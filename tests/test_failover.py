"""Failover: promotion, epoch fencing, retry policy, and the
kill-and-promote client — fast typed-contract tests plus the slow
differential suite (every crash offset; seeded chaos workloads).

Slow-lane assertions carry the seed / fault-plan recipe, so a CI chaos
failure is replayed by re-running the printed seed."""

from __future__ import annotations

import shutil
import threading
import time
import warnings
from random import Random

import pytest

from repro.errors import (
    CommitRejected,
    DeadlineExceeded,
    EpochFenced,
    ProtocolError,
    ServerOverloaded,
    StoreError,
    TornTailWarning,
)
from repro.faults import FaultPlan, FaultyWal, InjectedCrash
from repro.server import (
    ClientPool,
    FailoverClient,
    ReplicaEngine,
    RetryPolicy,
    StoreClient,
    StoreServer,
    promote,
)
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads import manager_stream, serving_state

from generators import chaos_seeds


def _mk_engine(n=30, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _commit_rows(engine, rows, branch="main"):
    session = SessionService(engine).session(branch)
    return [session.commit(session.begin().insert("manager", row))
            for row in rows]


def _graphs_equal(a, b):
    """Head-for-head, state-for-state equality of two engines."""
    assert a.graph.branches() == b.graph.branches()
    assert len(a.graph) == len(b.graph)
    for name in a.graph.branches():
        assert a.state(branch=name) == b.state(branch=name), name


# ----------------------------------------------------------------------
# promotion & fencing
# ----------------------------------------------------------------------
class TestPromotion:
    def test_promote_stamps_the_next_epoch(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 3))
        replica = ReplicaEngine(wal)
        promoted = promote(replica)
        assert promoted.epoch == 1
        assert promoted.describe()["epoch"] == 1
        _graphs_equal(promoted, primary)
        # The promoted engine serves writes under the new epoch.
        _commit_rows(promoted, manager_stream(30, 4)[3:])
        assert promoted.graph.seq == primary.graph.seq + 1

    def test_demoted_primary_append_is_fenced(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        promote(ReplicaEngine(wal))
        with pytest.raises(EpochFenced) as caught:
            _commit_rows(primary, manager_stream(30, 3)[2:])
        assert caught.value.held == 0
        assert caught.value.current == 1

    def test_promoted_replica_stops_tailing_itself(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        replica = ReplicaEngine(wal)
        promote(replica)
        with pytest.raises(EpochFenced):
            replica.sync()
        with pytest.raises(EpochFenced):
            replica.resync()
        assert replica.status()["promoted"] is True

    def test_tracking_follower_crosses_the_epoch(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        follower = ReplicaEngine(wal)
        follower.sync()
        promoted = promote(ReplicaEngine(wal))
        _commit_rows(promoted, manager_stream(30, 3)[2:])
        follower.sync()
        assert follower.engine.epoch == 1
        _graphs_equal(follower.engine, promoted)

    def test_pinned_follower_is_fenced_at_the_epoch(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        pinned = ReplicaEngine(wal, follow_epochs=False)
        pinned.sync()
        promote(ReplicaEngine(wal))
        with pytest.raises(EpochFenced) as caught:
            pinned.sync()
        assert caught.value.current == 1

    def test_live_tail_refuses_promotion(self, tmp_path):
        """A log that keeps growing after catch-up means the old
        primary is alive — promotion must refuse, not fork."""
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        replica = ReplicaEngine(wal)
        replica.sync()
        real_catch_up = replica.catch_up

        def racing_catch_up(**kwargs):
            result = real_catch_up(**kwargs)
            _commit_rows(primary, manager_stream(30, 3)[2:])
            return result

        replica.catch_up = racing_catch_up
        with pytest.raises(StoreError, match="appears to be alive"):
            promote(replica)
        assert replica.promoted is False

    def test_promotion_race_loser_is_fenced_and_resumes(self, tmp_path):
        """The TOCTOU window: a second promoter frozen between its
        catch-up and its stamp must lose to the winner's stamp, roll
        back its promoted mark, and resume following."""
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        loser = ReplicaEngine(wal)
        loser.sync()  # bootstrapped at epoch 0

        # Freeze the loser's view of the log...
        loser.sync = lambda max_records=None: 0
        loser.catch_up = lambda **kwargs: None
        loser.behind_bytes = lambda: 0
        # ...while the winner stamps epoch 1.
        winner = promote(ReplicaEngine(wal))
        assert winner.epoch == 1

        with pytest.raises(EpochFenced) as caught:
            promote(loser)
        assert caught.value.held == 0 and caught.value.current == 1
        assert loser.promoted is False  # rolled back: free to follow
        del loser.sync  # unfreeze (restore the class methods)
        del loser.catch_up, loser.behind_bytes
        loser.sync()
        assert loser.engine.epoch == 1
        _graphs_equal(loser.engine, winner)

    def test_double_promotion_advances_the_epoch_again(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        first = promote(ReplicaEngine(wal))
        _commit_rows(first, manager_stream(30, 3)[2:])
        second = promote(ReplicaEngine(wal))
        assert second.epoch == 2
        with pytest.raises(EpochFenced):
            _commit_rows(first, manager_stream(30, 4)[3:])

    def test_epoch_survives_restart_and_replay(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        promoted = promote(ReplicaEngine(wal))
        _commit_rows(promoted, manager_stream(30, 3)[2:])
        promoted.wal.close()
        replayed = StoreEngine.replay(wal)
        assert replayed.epoch == 1
        _graphs_equal(replayed, promoted)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class _Flaky:
    """Fails ``failures`` times with ``exc_type``, then returns 42."""

    def __init__(self, failures, exc_type=OSError):
        self.failures = failures
        self.exc_type = exc_type
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_type(f"failure {self.calls}")
        return 42


class _NoSleep(RetryPolicy):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.slept = []

    def sleep(self, delay):
        self.slept.append(delay)


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        for exc in (OSError("x"), ConnectionResetError("x"),
                    ProtocolError("x"), ServerOverloaded("x")):
            assert policy.retryable(exc), exc
        for exc in (CommitRejected("x", findings=[]), StoreError("x"),
                    ValueError("x"),
                    EpochFenced("x", held=0, current=1)):
            assert not policy.retryable(exc), exc

    def test_seeded_delays_are_deterministic_and_bounded(self):
        a = RetryPolicy(seed=7, base_delay=0.01, max_delay=0.5)
        b = RetryPolicy(seed=7, base_delay=0.01, max_delay=0.5)
        prev_a = prev_b = None
        for _ in range(20):
            prev_a, prev_b = a.next_delay(prev_a), b.next_delay(prev_b)
            assert prev_a == prev_b
            assert 0.01 <= prev_a <= 0.5

    def test_retries_until_success(self):
        fn = _Flaky(failures=3)
        policy = _NoSleep(max_attempts=6, seed=0)
        assert policy.call(fn) == 42
        assert fn.calls == 4 and len(policy.slept) == 3

    def test_fatal_error_raises_immediately(self):
        fn = _Flaky(failures=5, exc_type=ValueError)
        policy = _NoSleep(max_attempts=6, seed=0)
        with pytest.raises(ValueError):
            policy.call(fn)
        assert fn.calls == 1 and policy.slept == []

    def test_attempts_exhausted_reraises_the_last_failure(self):
        fn = _Flaky(failures=99)
        policy = _NoSleep(max_attempts=3, seed=0)
        with pytest.raises(OSError, match="failure 3"):
            policy.call(fn)
        assert fn.calls == 3

    def test_deadline_exceeded_chains_the_last_failure(self):
        fn = _Flaky(failures=99)
        policy = RetryPolicy(max_attempts=10, base_delay=5.0,
                             max_delay=5.0, seed=0)
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded) as caught:
            policy.call(fn, deadline=0.05)
        assert time.monotonic() - start < 1.0  # never slept 5 s
        assert isinstance(caught.value.__cause__, OSError)
        assert fn.calls == 1

    def test_epoch_fenced_is_fatal_to_the_bare_policy(self):
        fn = _Flaky(failures=1, exc_type=lambda m: EpochFenced(
            m, held=0, current=1))
        policy = _NoSleep(max_attempts=6, seed=0)
        with pytest.raises(EpochFenced):
            policy.call(fn)
        assert fn.calls == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(StoreError):
            RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# the wire: epochs in hello/status, fencing over the protocol
# ----------------------------------------------------------------------
class TestWireEpoch:
    def test_hello_and_status_carry_the_epoch(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        promoted = promote(ReplicaEngine(wal))
        with StoreServer(promoted) as server:
            with StoreClient(*server.address) as client:
                assert client.server_info["epoch"] == 1
                status = client.status()
                assert status["epoch"] == 1
                assert status["idle_closed"] == 0

    def test_fenced_commit_crosses_the_wire_typed(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        with StoreServer(primary) as server:  # serving while demoted
            promote(ReplicaEngine(wal))
            with StoreClient(*server.address) as client:
                with pytest.raises(EpochFenced) as caught:
                    client.run([{"op": "insert", "relation": "manager",
                                 "row": manager_stream(30, 3)[2]}])
        assert caught.value.held == 0
        assert caught.value.current == 1

    def test_replica_status_reports_epoch_and_promoted(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 2))
        replica = ReplicaEngine(wal)
        replica.sync()
        with StoreServer(replica) as server:
            with StoreClient(*server.address) as client:
                status = client.status()
        assert status["role"] == "replica"
        assert status["epoch"] == 0
        assert status["promoted"] is False
        assert status["behind_bytes"] == 0


# ----------------------------------------------------------------------
# idle timeout & pool eviction
# ----------------------------------------------------------------------
class TestIdleTimeout:
    def test_rejects_non_positive_timeout(self):
        engine = _mk_engine()
        with pytest.raises(StoreError):
            StoreServer(engine, idle_timeout=0)
        with pytest.raises(StoreError):
            StoreServer(engine, idle_timeout=-1.0)
        engine.close()

    def test_idle_connection_is_closed_and_counted(self):
        engine = _mk_engine()
        with StoreServer(engine, idle_timeout=0.15) as server:
            idle = StoreClient(*server.address)
            deadline = time.monotonic() + 5.0
            while True:
                with StoreClient(*server.address) as probe:
                    if probe.status()["idle_closed"] >= 1:
                        break
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert idle.is_stale()  # server hung up on the idler
            idle.close()
        engine.close()

    def test_active_connection_survives_the_timeout(self):
        engine = _mk_engine()
        with StoreServer(engine, idle_timeout=0.2) as server:
            with StoreClient(*server.address) as client:
                for _ in range(4):
                    time.sleep(0.1)
                    assert client.ping()  # traffic resets the clock
        engine.close()


class TestPoolEviction:
    def test_stale_pooled_client_is_evicted_on_acquire(self):
        engine = _mk_engine()
        server = StoreServer(engine)
        server.start_background()
        host, port = server.address
        pool = ClientPool(host, port, size=1)  # the next acquire must
        # draw the pooled corpse, not an undialled slot
        with pool.acquire() as client:
            assert client.ping()
        server.stop()  # the pooled socket is now dead
        server2 = StoreServer(engine, host=host, port=port)
        server2.start_background()
        try:
            with pool.acquire() as client:
                assert client.ping()  # fresh dial, not the corpse
            assert pool.evicted == 1
        finally:
            pool.close()
            server2.stop()
            engine.close()


@pytest.mark.slow
class TestPoolUnderChurn:
    def test_concurrent_borrowers_survive_server_churn(self):
        """Seeded churn: worker threads acquire/ping/release against a
        server that a churn thread keeps killing and restarting on the
        same port, so stale-peek eviction races real disconnects and
        failed dials.  The invariant under fire is slot conservation —
        after the dust settles a ``size``-deep nest of acquires must
        still succeed, which it cannot if any error path leaked a
        slot."""
        for seed in chaos_seeds(3):
            engine = _mk_engine()
            sizer = StoreServer(engine)
            sizer.start_background()
            host, port = sizer.address
            sizer.stop()  # the port is now ours to churn on
            stop_churn = threading.Event()

            def churn():
                rng = Random(seed)
                while not stop_churn.is_set():
                    try:
                        server = StoreServer(engine, host=host,
                                             port=port)
                        server.start_background()
                    except OSError:
                        time.sleep(0.01)  # port not released yet
                        continue
                    time.sleep(rng.uniform(0.05, 0.15))
                    server.stop()
                    time.sleep(rng.uniform(0.0, 0.03))

            pool = ClientPool(host, port, size=3)
            successes = []

            def worker(wseed):
                rng = Random(wseed)
                won = 0
                for _ in range(40):
                    try:
                        with pool.acquire() as client:
                            client.ping()
                        won += 1
                    except (ProtocolError, OSError, StoreError):
                        pass  # a kill mid-borrow: the slot must free
                    time.sleep(rng.uniform(0.0, 0.005))
                successes.append(won)

            churner = threading.Thread(target=churn)
            workers = [threading.Thread(target=worker,
                                        args=(seed * 100 + i,))
                       for i in range(6)]
            churner.start()
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=30)
            stop_churn.set()
            churner.join(timeout=10)
            assert not any(w.is_alive() for w in workers), (
                f"borrower deadlocked under churn: seed={seed}")
            assert sum(successes) > 0, f"seed={seed}"
            # Slot conservation: with a stable server back, the full
            # pool depth must still be acquirable at once.
            stable = StoreServer(engine, host=host, port=port)
            stable.start_background()

            def drain():
                with pool.acquire() as a, pool.acquire() as b, \
                        pool.acquire() as c:
                    assert a.ping() and b.ping() and c.ping()

            guard = threading.Thread(target=drain)
            guard.start()
            guard.join(timeout=10)
            assert not guard.is_alive(), (
                f"pool leaked a slot under churn: seed={seed} "
                f"evicted={pool.evicted}")
            pool.close()
            stable.stop()
            engine.close()


# ----------------------------------------------------------------------
# the failover client
# ----------------------------------------------------------------------
class TestFailoverClient:
    def test_requires_addresses(self):
        with pytest.raises(StoreError):
            FailoverClient([])

    def test_refuses_a_stale_epoch_primary(self):
        engine = _mk_engine()
        with StoreServer(engine) as server:  # serves epoch 0
            with FailoverClient([server.address]) as fc:
                fc.epoch = 1  # the client has seen a promotion
                with pytest.raises(EpochFenced) as caught:
                    fc._primary()
                assert caught.value.held == 0
                assert caught.value.current == 1
        engine.close()

    def test_writes_and_reads_against_a_healthy_primary(self):
        engine = _mk_engine()
        rows = manager_stream(30, 2)
        with StoreServer(engine) as server:
            with FailoverClient([server.address]) as fc:
                result = fc.run([{"op": "insert", "relation": "manager",
                                  "row": rows[0]}])
                assert result["version"]
                assert fc.epoch == 0
                assert rows[0] in fc.read("manager")
                assert fc.heartbeat() is True
        engine.close()

    def test_heartbeat_detects_a_dead_primary(self):
        engine = _mk_engine()
        server = StoreServer(engine)
        server.start_background()
        fc = FailoverClient([server.address])
        assert fc.heartbeat() is False  # no connection yet
        fc._primary()
        assert fc.heartbeat() is True
        server.stop()
        assert fc.heartbeat() is False  # dropped, will re-resolve
        fc.close()
        engine.close()

    def test_read_degrades_to_a_fresh_replica(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        engine = _mk_engine(wal=wal)
        rows = manager_stream(30, 1)
        _commit_rows(engine, rows)
        replica = ReplicaEngine(wal)
        replica.sync()
        primary = StoreServer(engine)
        primary.start_background()
        with StoreServer(replica) as mirror:
            fc = FailoverClient([primary.address, mirror.address],
                                staleness_budget=0,
                                policy=RetryPolicy(seed=0),
                                timeout=1.0)
            assert rows[0] in fc.read("manager")  # via the primary
            primary.stop()
            assert rows[0] in fc.read("manager")  # via the replica
            fc.close()
        engine.close()

    def test_write_deadline_lapses_with_cause_when_no_primary(self):
        engine = _mk_engine()
        replica_like = StoreServer(engine)  # never started: dead addr
        fc = FailoverClient([("127.0.0.1", 1)],  # nothing listens here
                            policy=RetryPolicy(
                                seed=0, base_delay=0.01, max_delay=0.05),
                            timeout=0.2)
        with pytest.raises(DeadlineExceeded) as caught:
            fc.run([{"op": "insert", "relation": "manager",
                     "row": manager_stream(30, 1)[0]}], deadline=0.3)
        assert caught.value.__cause__ is not None
        fc.close()
        engine.close()

    def test_queue_and_flush_land_in_order(self):
        engine = _mk_engine()
        rows = manager_stream(30, 3)
        with StoreServer(engine) as server:
            with FailoverClient([server.address]) as fc:
                assert fc.queue([{"op": "insert", "relation": "manager",
                                  "row": rows[0]}]) == 1
                assert fc.queue([{"op": "insert", "relation": "manager",
                                  "row": rows[1]}]) == 2
                assert fc.queued == 2
                results = fc.flush()
                assert len(results) == 2 and fc.queued == 0
                head = fc.read("manager")
                assert rows[0] in head and rows[1] in head
        engine.close()

    def test_lapsed_flush_keeps_the_unflushed_suffix(self):
        engine = _mk_engine()
        rows = manager_stream(30, 2)
        fc = FailoverClient([("127.0.0.1", 1)],
                            policy=RetryPolicy(
                                seed=0, base_delay=0.01, max_delay=0.05),
                            timeout=0.2)
        fc.queue([{"op": "insert", "relation": "manager", "row": rows[0]}])
        fc.queue([{"op": "insert", "relation": "manager", "row": rows[1]}])
        with pytest.raises(DeadlineExceeded):
            fc.flush(deadline=0.2)
        assert fc.queued == 2  # nothing landed, nothing lost
        fc.close()
        engine.close()


# ----------------------------------------------------------------------
# the slow lane: differential promotion durability & chaos workloads
# ----------------------------------------------------------------------
def _expected_from(path, tmp_path, tag):
    """Replay a *copy* of the log (promotion repairs in place)."""
    copy = tmp_path / f"expected-{tag}.jsonl"
    shutil.copyfile(path, copy)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TornTailWarning)
        return StoreEngine.replay(copy)


@pytest.mark.slow
class TestPromotionDurability:
    def test_every_crash_offset_of_the_wal_tail(self, tmp_path):
        """Crash the primary at every byte offset of its final WAL
        record; promotion must produce exactly the durable prefix —
        the whole final record or none of it, plus epoch 1."""
        source = tmp_path / "source.jsonl"
        engine = _mk_engine(n=12, wal=source)
        _commit_rows(engine, manager_stream(12, 3))
        engine.close()
        data = source.read_bytes()
        last_start = data.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(last_start + 1, len(data)):
            wal = tmp_path / f"cut-{cut}.jsonl"
            wal.write_bytes(data[:cut])
            expected = _expected_from(wal, tmp_path, f"cut-{cut}")
            promoted = promote(ReplicaEngine(wal))
            assert promoted.epoch == 1, f"cut at byte {cut}"
            assert promoted.graph.branches() \
                == expected.graph.branches(), f"cut at byte {cut}"
            assert len(promoted.graph) == len(expected.graph), \
                f"cut at byte {cut}"
            assert promoted.state() == expected.state(), \
                f"cut at byte {cut}"
            # The promoted engine accepts writes over the repaired log.
            _commit_rows(promoted, manager_stream(12, 4)[3:])
            promoted.wal.close()

    def test_seeded_crash_differential(self, tmp_path):
        """25 seeds of live fault injection: a seeded crash shape at a
        seeded commit, power loss, then promote — the promoted graph
        must equal a plain replay of the durable prefix."""
        for seed in chaos_seeds(25):
            rng = Random(seed)
            site = rng.choice(["wal.torn", "wal.short", "wal.fsync_loss"])
            index = rng.randrange(0, 6)
            plan = FaultPlan(seed=seed, trips={site: {index: None}})
            wal = tmp_path / f"seed-{seed}.jsonl"
            engine = _mk_engine(n=30, wal=wal)
            engine.wal = FaultyWal(engine.wal, plan)
            try:
                _commit_rows(engine, manager_stream(30, 7))
            except InjectedCrash:
                pass
            engine.wal.simulate_power_loss()
            expected = _expected_from(wal, tmp_path, f"seed-{seed}")
            promoted = promote(ReplicaEngine(wal))
            recipe = f"seed={seed} plan={plan.describe()}"
            assert promoted.epoch == 1, recipe
            assert promoted.graph.branches() \
                == expected.graph.branches(), recipe
            assert len(promoted.graph) == len(expected.graph), recipe
            for name in expected.graph.branches():
                assert promoted.state(branch=name) \
                    == expected.state(branch=name), recipe
            promoted.wal.close()


@pytest.mark.slow
class TestKillAndPromoteWorkload:
    def test_no_acked_commit_is_ever_lost(self, tmp_path):
        """The acceptance workload, three seeds: write through a
        primary, kill it, queue writes, promote the replica, flush —
        every acknowledged commit must be in the promoted graph."""
        for i, seed in enumerate(chaos_seeds(3)):
            wal = tmp_path / f"w-{seed}.jsonl"
            engine = _mk_engine(n=60, wal=wal)
            replica = ReplicaEngine(wal)
            replica.sync()
            rows = manager_stream(60, 9)
            acked = []
            primary = StoreServer(engine)
            primary.start_background()
            fc = FailoverClient(
                [primary.address],
                policy=RetryPolicy(seed=seed, base_delay=0.01,
                                   max_delay=0.1),
                deadline=15.0, timeout=2.0)
            base = i * 3
            acked.append((rows[base],
                          fc.run([{"op": "insert", "relation": "manager",
                                   "row": rows[base]}])))
            primary.stop()  # the kill
            replica.sync()  # the tail was durable before the kill
            fc.queue([{"op": "insert", "relation": "manager",
                       "row": rows[base + 1]}])
            fc.queue([{"op": "insert", "relation": "manager",
                       "row": rows[base + 2]}])
            promoted = promote(replica)
            with StoreServer(promoted) as successor:
                fc.add_address(successor.address)
                results = fc.flush()
                acked.extend(zip(rows[base + 1:base + 3], results))
                assert fc.epoch == 1, f"seed={seed}"
                head = fc.read("manager")
            fc.close()
            for row, result in acked:
                assert row in head, (
                    f"acked commit lost: seed={seed} "
                    f"version={result['version']}")
            promoted.wal.close()
            engine.close()
