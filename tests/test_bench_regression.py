"""Bench-regression lane: diff fresh kernel timings against the committed dump.

``benchmarks/compare_bench.py`` is the trajectory tool: it diffs a fresh
``--bench-json`` dump against the committed ``BENCH_kernel.json`` and
fails on a >2x regression of any kernel benchmark.  The fast tests here
pin the tool's diff semantics on synthetic dumps; the slow-lane test
re-times the instance-check benches in a subprocess and runs the real
diff (slow because it spins a full pytest-benchmark session; wall-clock
baselines also only make sense within one machine generation, which is
what the generous 2x threshold absorbs).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

import compare_bench  # noqa: E402  (needs the benchmarks dir on sys.path)


def _dump(records: dict[str, float]) -> dict[str, dict]:
    return {
        name: {"fullname": name, "min_s": t, "mean_s": t}
        for name, t in records.items()
    }


KERNEL_NAME = "benchmarks/bench_a6_instance_checks.py::test_a6_fd_holds_kernel[1000]"
OTHER_NAME = "benchmarks/bench_e01_employee_table.py::test_e01_employee_table"


class TestCompareBenchTool:
    def test_flags_kernel_regressions_beyond_threshold(self):
        baseline = _dump({KERNEL_NAME: 1e-3})
        fresh = _dump({KERNEL_NAME: 2.5e-3})
        out = compare_bench.diff(baseline, fresh, threshold=2.0)
        assert [r["fullname"] for r in out] == [KERNEL_NAME]
        assert out[0]["ratio"] == pytest.approx(2.5)

    def test_within_threshold_passes(self):
        baseline = _dump({KERNEL_NAME: 1e-3})
        fresh = _dump({KERNEL_NAME: 1.9e-3})
        assert compare_bench.diff(baseline, fresh, threshold=2.0) == []

    def test_non_kernel_benches_ignored_unless_all(self):
        baseline = _dump({OTHER_NAME: 1e-3})
        fresh = _dump({OTHER_NAME: 9e-3})
        assert compare_bench.diff(baseline, fresh, threshold=2.0) == []
        widened = compare_bench.diff(baseline, fresh, threshold=2.0,
                                     kernel_only=False)
        assert [r["fullname"] for r in widened] == [OTHER_NAME]

    def test_unmatched_benches_are_skipped_by_diff(self):
        baseline = _dump({KERNEL_NAME: 1e-3, KERNEL_NAME + "x": 1e-3})
        fresh = _dump({KERNEL_NAME: 1e-3})
        assert compare_bench.diff(baseline, fresh, threshold=2.0) == []

    def test_missing_kernel_baseline_is_reported(self):
        """A retired/renamed kernel bench must not pass the gate silently."""
        baseline = _dump({KERNEL_NAME: 1e-3, KERNEL_NAME + "x": 1e-3})
        fresh = _dump({KERNEL_NAME: 1e-3})
        assert compare_bench.missing_baselines(baseline, fresh) == \
            [KERNEL_NAME + "x"]

    def test_missing_non_kernel_baseline_needs_all(self):
        baseline = _dump({OTHER_NAME: 1e-3})
        fresh = _dump({})
        assert compare_bench.missing_baselines(baseline, fresh) == []
        assert compare_bench.missing_baselines(
            baseline, fresh, kernel_only=False
        ) == [OTHER_NAME]

    def test_new_fresh_benches_do_not_trip_missing(self):
        baseline = _dump({KERNEL_NAME: 1e-3})
        fresh = _dump({KERNEL_NAME: 1e-3, KERNEL_NAME + "new": 1e-3})
        assert compare_bench.missing_baselines(baseline, fresh) == []

    def test_worst_regression_sorts_first(self):
        a = KERNEL_NAME
        b = "benchmarks/bench_a4_chase.py::test_a4_chase"
        baseline = _dump({a: 1e-3, b: 1e-3})
        fresh = _dump({a: 3e-3, b: 5e-3})
        out = compare_bench.diff(baseline, fresh, threshold=2.0)
        assert [r["fullname"] for r in out] == [b, a]

    def test_main_exit_codes(self, tmp_path):
        payload = {"benchmarks": [
            {"fullname": KERNEL_NAME, "min_s": 1e-3, "mean_s": 1e-3},
        ]}
        base = tmp_path / "base.json"
        base.write_text(json.dumps(payload))
        fresh_ok = tmp_path / "ok.json"
        fresh_ok.write_text(json.dumps(payload))
        assert compare_bench.main([str(fresh_ok), str(base)]) == 0
        payload["benchmarks"][0] = dict(payload["benchmarks"][0], min_s=5e-3)
        fresh_bad = tmp_path / "bad.json"
        fresh_bad.write_text(json.dumps(payload))
        assert compare_bench.main([str(fresh_bad), str(base)]) == 1

    def test_main_fails_on_missing_kernel_baseline(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"benchmarks": [
            {"fullname": KERNEL_NAME, "min_s": 1e-3, "mean_s": 1e-3},
        ]}))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"benchmarks": []}))
        assert compare_bench.main([str(fresh), str(base)]) == 1


@pytest.mark.slow
class TestFreshDumpAgainstCommitted:
    def test_instance_kernel_benches_within_2x_of_committed(self, tmp_path):
        """Re-run the a6-instance and a7-sweep benches and diff against
        the committed ``BENCH_kernel.json`` with the real tool (including
        the missing-baseline gate, restricted to the re-run modules)."""
        committed = REPO / "BENCH_kernel.json"
        assert committed.exists(), "committed bench dump missing"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        fresh_path = tmp_path / "fresh.json"
        proc = subprocess.run(
            [sys.executable, "-m", "pytest",
             str(REPO / "benchmarks" / "bench_a6_instance_checks.py"),
             str(REPO / "benchmarks" / "bench_a7_axiom_sweep.py"),
             "-q", "--benchmark-min-rounds=3", "--bench-json", str(fresh_path)],
            cwd=tmp_path, env=env, capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        baseline = compare_bench.load(str(committed))
        fresh = compare_bench.load(str(fresh_path))
        regressions = compare_bench.diff(baseline, fresh, threshold=2.0)
        assert not regressions, regressions
        rerun_prefixes = ("benchmarks/bench_a6_instance_checks.py::",
                          "benchmarks/bench_a7_axiom_sweep.py::")
        gone = [
            name for name in compare_bench.missing_baselines(baseline, fresh)
            if name.startswith(rerun_prefixes)
        ]
        assert not gone, gone
