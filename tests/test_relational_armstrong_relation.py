"""Unit tests for counterexample construction (repro.relational.armstrong_relation)."""

import random

from repro.relational import (
    FD,
    armstrong_relation,
    holds_in,
    implies,
    is_armstrong_for,
    satisfied_fds,
    two_tuple_witness,
    witness_respects,
)


class TestTwoTupleWitness:
    def test_no_witness_for_implied(self):
        fds = [FD({"a"}, {"b"})]
        assert two_tuple_witness("ab", fds, FD({"a"}, {"b"})) is None

    def test_witness_for_unimplied(self):
        fds = [FD({"a"}, {"b"})]
        witness = two_tuple_witness("abc", fds, FD({"a"}, {"c"}))
        assert witness is not None
        assert len(witness) == 2
        assert all(holds_in(fd, witness) for fd in fds)
        assert not holds_in(FD({"a"}, {"c"}), witness)

    def test_witness_respects_random(self):
        rng = random.Random(3)
        attrs = ["a", "b", "c", "d"]
        for _ in range(100):
            fds = []
            for _ in range(rng.randint(0, 4)):
                lhs = frozenset(rng.sample(attrs, rng.randint(1, 2)))
                rhs = frozenset(rng.sample(attrs, 1))
                fds.append(FD(lhs, rhs))
            candidate = FD(
                frozenset(rng.sample(attrs, rng.randint(1, 2))),
                frozenset(rng.sample(attrs, 1)),
            )
            assert witness_respects(attrs, fds, candidate)

    def test_completeness_direction(self):
        """Every non-implied FD has a separating model: Armstrong completeness."""
        fds = [FD({"a"}, {"b"}), FD({"b"}, {"c"})]
        non_implied = FD({"c"}, {"a"})
        assert not implies(fds, non_implied)
        assert two_tuple_witness("abc", fds, non_implied) is not None


class TestArmstrongRelation:
    def test_exactness_small(self):
        fds = [FD({"a"}, {"b"})]
        rel = armstrong_relation("abc", fds)
        assert is_armstrong_for(rel, fds)

    def test_exactness_chain(self):
        fds = [FD({"a"}, {"b"}), FD({"b"}, {"c"})]
        rel = armstrong_relation("abc", fds)
        assert is_armstrong_for(rel, fds)

    def test_no_fds(self):
        rel = armstrong_relation("ab", [])
        sat = satisfied_fds(rel)
        assert all(fd.is_trivial() or not fd.lhs or fd.rhs <= fd.lhs for fd in sat
                   if fd.lhs)  # only trivial dependencies survive

    def test_satisfied_fds_contains_trivials(self):
        rel = armstrong_relation("ab", [FD({"a"}, {"b"})])
        sat = satisfied_fds(rel)
        assert FD({"a"}, {"a"}) in sat
        assert FD({"a"}, {"b"}) in sat
