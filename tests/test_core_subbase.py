"""Unit tests for subbase choice and constructed types (section 3.1)."""

import pytest

from repro.core import (
    SubbaseChoice,
    designer_bias_report,
    minimal_subbase_choices,
    redundant_types,
)
from repro.core.employee import PAPER_CONSTRUCTED, PAPER_SUBBASE
from repro.errors import SchemaError


class TestPaperResult:
    def test_paper_subbase_valid(self, schema):
        choice = SubbaseChoice(schema, PAPER_SUBBASE)
        assert choice.is_valid()

    def test_worksfor_constructed(self, schema):
        choice = SubbaseChoice(schema, PAPER_SUBBASE)
        assert {e.name for e in choice.constructed_types()} == set(PAPER_CONSTRUCTED)

    def test_worksfor_expression(self, schema):
        """S_worksfor = S_employee intersect S_department (plus S_person,
        which is redundant in the intersection)."""
        choice = SubbaseChoice(schema, PAPER_SUBBASE)
        expr = choice.expression_for(schema["worksfor"])
        names = {e.name for e in expr}
        assert "employee" in names and "department" in names

    def test_paper_subbase_is_the_unique_minimal(self, schema):
        choices = minimal_subbase_choices(schema)
        assert len(choices) == 1
        assert {e.name for e in choices[0]} == set(PAPER_SUBBASE)


class TestValidation:
    def test_insufficient_choice_rejected(self, schema):
        with pytest.raises(SchemaError):
            SubbaseChoice(schema, {"person", "department"})

    def test_full_choice_always_valid(self, schema):
        choice = SubbaseChoice(schema, [e.name for e in schema])
        assert choice.is_valid()
        assert not choice.constructed_types()


class TestRedundancy:
    def test_only_worksfor_redundant(self, schema):
        assert {e.name for e in redundant_types(schema)} == {"worksfor"}

    def test_bias_report(self, schema):
        report = designer_bias_report(schema)
        assert {e.name for e in report["redundant"]} == {"worksfor"}
        assert {e.name for e in report["essential"]} == set(PAPER_SUBBASE)

    def test_schema_with_multiple_choices(self):
        """x and y generate each other's role here: two minimal subbases.

        With types a={p}, b={q}, ab={p,q}: S_a={a,ab}, S_b={b,ab},
        S_ab={ab} = S_a intersect S_b, so ab is constructed; a and b are
        both essential.  Adding c={p,q,r} gives S_c={c} ... keep simple:
        check the three-type case has exactly one minimal subbase {a, b}.
        """
        from repro.core import Schema

        schema = Schema.from_attribute_sets({
            "a": {"p"}, "b": {"q"}, "ab": {"p", "q"},
        })
        choices = minimal_subbase_choices(schema)
        assert [{e.name for e in c} for c in choices] == [{"a", "b"}]
