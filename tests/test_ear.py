"""Unit tests for the EAR baseline and its translation (repro.ear)."""

import pytest

from repro.core import canonical_contributors
from repro.ear import (
    EAREntitySet,
    EARRelationshipSet,
    EARSchema,
    employee_ear_schema,
    translate,
)
from repro.errors import SchemaError


class TestModel:
    def test_entity_needs_attributes(self):
        with pytest.raises(SchemaError):
            EAREntitySet("empty", frozenset())

    def test_relationship_cardinality_checked(self):
        with pytest.raises(SchemaError):
            EARRelationshipSet("r", "a", "b", cardinality="many")

    def test_recursive_relationship_rejected(self):
        with pytest.raises(SchemaError):
            EARRelationshipSet("r", "a", "a")

    def test_total_must_be_participant(self):
        with pytest.raises(SchemaError):
            EARRelationshipSet("r", "a", "b", total=frozenset({"c"}))

    def test_schema_name_uniqueness(self):
        with pytest.raises(SchemaError):
            EARSchema(
                entities=[
                    EAREntitySet("x", frozenset({"a"})),
                    EAREntitySet("x", frozenset({"b"})),
                ],
            )

    def test_unknown_participant(self):
        with pytest.raises(SchemaError):
            EARSchema(
                entities=[EAREntitySet("x", frozenset({"a"}))],
                relationships=[EARRelationshipSet("r", "x", "ghost")],
            )


class TestTranslation:
    def test_employee_ear_translates(self):
        result = translate(employee_ear_schema())
        schema = result.schema
        assert {"employee", "department", "worksfor"} <= {e.name for e in schema}
        worksfor = schema["worksfor"]
        assert worksfor.attributes == frozenset({"name", "age", "depname", "location"})

    def test_contributors_are_participants(self):
        result = translate(employee_ear_schema())
        cos = result.contributors.contributors(result.schema["worksfor"])
        assert {c.name for c in cos} == {"employee", "department"}

    def test_contributors_match_canonical(self):
        result = translate(employee_ear_schema())
        canonical = canonical_contributors(result.schema, result.schema["worksfor"])
        assert result.contributors.contributors(result.schema["worksfor"]) == canonical
        assert result.notes == []

    def test_cardinality_becomes_fd(self):
        result = translate(employee_ear_schema())
        fds = result.constraints.functional_dependencies()
        assert any(
            fd.determinant.name == "employee" and fd.dependent.name == "department"
            for fd in fds
        )

    def test_total_participation_constraint(self):
        result = translate(employee_ear_schema())
        names = [c.name for c in result.constraints.constraints]
        assert any("total(employee" in n for n in names)

    def test_attribute_collision_renamed(self):
        ear = EARSchema(
            entities=[
                EAREntitySet("person", frozenset({"name"})),
                EAREntitySet("company", frozenset({"name", "city"})),
            ],
            relationships=[EARRelationshipSet("employs", "company", "person")],
        )
        result = translate(ear)
        assert result.renamed_attributes
        # The relationship type keeps both roles distinct:
        employs = result.schema["employs"]
        assert len(employs.attributes) == 3

    def test_entity_overlapping_relationship_resolved_by_renaming(self):
        """An entity set sharing attributes with a relationship's union is
        rescued by the role-renaming pass — the Attribute Axiom in action."""
        ear = EARSchema(
            entities=[
                EAREntitySet("a", frozenset({"x"})),
                EAREntitySet("b", frozenset({"y"})),
                EAREntitySet("ab_twin", frozenset({"x", "y"})),
            ],
            relationships=[EARRelationshipSet("r", "a", "b")],
        )
        result = translate(ear)
        assert result.renamed_attributes
        assert result.schema["ab_twin"].attributes != result.schema["r"].attributes

    def test_identical_compiled_sets_rejected(self):
        """Two relationships over the same participants with no descriptive
        attributes compile to one attribute set: irreparably synonymous."""
        ear = EARSchema(
            entities=[
                EAREntitySet("a", frozenset({"x"})),
                EAREntitySet("b", frozenset({"y"})),
            ],
            relationships=[
                EARRelationshipSet("r1", "a", "b"),
                EARRelationshipSet("r2", "a", "b"),
            ],
        )
        with pytest.raises(SchemaError):
            translate(ear)

    def test_one_to_one_compiles_two_fds(self):
        ear = EARSchema(
            entities=[
                EAREntitySet("a", frozenset({"x"})),
                EAREntitySet("b", frozenset({"y"})),
            ],
            relationships=[EARRelationshipSet("r", "a", "b", cardinality="1:1")],
        )
        result = translate(ear)
        assert len(result.constraints.functional_dependencies()) == 2

    def test_round_trip_on_extension(self, db):
        """The translated schema accepts the paper's employee data."""
        from repro.core import DatabaseExtension

        result = translate(employee_ear_schema(), domains={
            "name": ["ann", "bob", "cas", "dee", "eva", "fay"],
            "age": [28, 31, 35, 42, 47, 53],
            "depname": ["sales", "research", "admin"],
            "location": ["amsterdam", "utrecht", "delft"],
        })
        translated_db = DatabaseExtension(result.schema, {
            "employee": [{"name": t["name"], "age": t["age"]}
                         for t in db.R("person").tuples],
            "department": list(db.R("department").tuples),
            "worksfor": list(db.R("worksfor").tuples),
        }, result.contributors)
        assert translated_db.satisfies_containment()
