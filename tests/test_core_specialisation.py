"""Unit tests for the specialisation structure (section 3.1)."""

import pytest

from repro.core import SpecialisationStructure
from repro.core.employee import PAPER_S_SETS
from repro.errors import SchemaError


@pytest.fixture
def spec(schema):
    return SpecialisationStructure(schema)


class TestVSets:
    def test_V_name(self, spec):
        assert {e.name for e in spec.V("name")} == {
            "person", "employee", "manager", "worksfor",
        }

    def test_V_budget_singleton(self, spec):
        assert {e.name for e in spec.V("budget")} == {"manager"}

    def test_L_contains_E_and_all_S(self, spec, schema):
        family = spec.L()
        assert schema.entity_types in family
        for e in schema:
            assert spec.S(e) in family


class TestSSets:
    def test_paper_values(self, spec, schema):
        for name, expected in PAPER_S_SETS.items():
            assert {f.name for f in spec.S(schema[name])} == set(expected)

    def test_intersection_construction_agrees(self, spec):
        assert spec.cross_check()

    def test_e_in_its_own_S(self, spec, schema):
        for e in schema:
            assert e in spec.S(e)

    def test_minimality(self, spec):
        assert spec.minimality_holds()

    def test_proper_specialisations(self, spec, schema):
        proper = {e.name for e in spec.proper_specialisations(schema["person"])}
        assert proper == {"employee", "manager", "worksfor"}

    def test_foreign_entity_rejected(self, spec):
        from repro.core import EntityType

        with pytest.raises(SchemaError):
            spec.S(EntityType("alien", {"name"}))


class TestTopology:
    def test_subbase_is_open_cover(self, spec):
        assert spec.is_open_cover()
        assert spec.space.is_open_cover(spec.subbase())

    def test_minimal_open_is_S(self, spec):
        assert spec.minimal_open_is_S()

    def test_every_S_open(self, spec, schema):
        for e in schema:
            assert spec.space.is_open(spec.S(e))

    def test_space_is_t0(self, spec):
        from repro.topology import is_t0

        assert is_t0(spec.space)


class TestISA:
    def test_strictness_from_entity_axiom(self, spec):
        assert spec.entity_type_axiom_forces_strictness()

    def test_isa_pairs(self, spec, schema):
        pairs = {(x.name, y.name) for x, y in spec.isa_pairs()}
        assert ("manager", "employee") in pairs
        assert ("manager", "person") in pairs
        assert ("employee", "person") in pairs
        assert ("worksfor", "department") in pairs
        assert ("person", "employee") not in pairs

    def test_hasse_drops_transitive_edge(self, spec):
        edges = {(x.name, y.name) for x, y in spec.isa_hasse()}
        assert ("manager", "employee") in edges
        assert ("manager", "person") not in edges  # via employee

    def test_roots_and_leaves(self, spec):
        assert {e.name for e in spec.roots()} == {"person", "department"}
        assert {e.name for e in spec.leaves()} == {"manager", "worksfor"}

    def test_is_specialisation(self, spec, schema):
        assert spec.is_specialisation(schema["manager"], schema["person"])
        assert not spec.is_specialisation(schema["person"], schema["manager"])
