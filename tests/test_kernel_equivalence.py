"""Randomized equivalence: bitset kernels vs. the retained naive oracles.

Every hot path that was rewired through :mod:`repro.kernel` keeps its
original implementation as a ``*_naive`` reference oracle.  These
property tests drive both routes with seeded random inputs (~200 cases
per property) and assert exact agreement — the kernels are only allowed
to be faster, never different.

Inputs come from the shared :mod:`generators` harness (also used by
``test_kernel_instance_equivalence.py`` for the instance kernel).
"""

from __future__ import annotations

import random

import pytest

from generators import random_family, random_fds
from repro.kernel import FDKernel
from repro.relational.chase import is_lossless, is_lossless_naive
from repro.relational.fd import closure, closure_naive, implies
from repro.topology.generation import (
    intersections_of,
    intersections_of_naive,
    is_base_for,
    minimal_base,
    minimal_base_naive,
    redundant_in_subbase,
    topology_from_subbase,
    topology_from_subbase_naive,
    unions_of,
    unions_of_naive,
)

CASES = 200


class TestTopologyGenerationEquivalence:
    def test_topology_from_subbase_matches_naive(self):
        rng = random.Random(0xA2)
        for case in range(CASES):
            points = [f"p{i}" for i in range(rng.randint(0, 8))]
            subbase = random_family(rng, points)
            fast = topology_from_subbase(points, subbase)
            slow = topology_from_subbase_naive(points, subbase)
            assert fast.points == slow.points, case
            assert fast.opens == slow.opens, case
            for p in points:
                assert fast.minimal_open(p) == slow.minimal_open(p), case

    def test_intersections_match_naive(self):
        rng = random.Random(0xA3)
        for case in range(CASES):
            points = [f"p{i}" for i in range(rng.randint(0, 9))]
            subbase = random_family(rng, points)
            assert intersections_of(subbase, points) == \
                intersections_of_naive(subbase, points), case

    def test_unions_match_naive(self):
        rng = random.Random(0xA4)
        for case in range(CASES):
            points = [f"p{i}" for i in range(rng.randint(0, 9))]
            family = random_family(rng, points)
            assert unions_of(family) == unions_of_naive(family), case

    def test_redundancy_matches_naive_with_stray_points(self):
        """Members are judged and returned as given, even when they carry
        out-of-carrier points or clip to the same set as another member."""
        rng = random.Random(0xA5)
        for case in range(100):
            points = [f"p{i}" for i in range(rng.randint(1, 6))]
            subbase = random_family(rng, points)
            if rng.random() < 0.5:  # stray points outside the carrier
                subbase = [s | {"stray"} if rng.random() < 0.3 else s
                           for s in subbase]
            family = frozenset(frozenset(s) for s in subbase)
            reference = topology_from_subbase_naive(points, family).opens
            expected = frozenset(
                m for m in family
                if topology_from_subbase_naive(points, family - {m}).opens
                == reference
            )
            assert redundant_in_subbase(points, subbase) == expected, case


class TestMinimalBaseEquivalence:
    def test_minimal_base_matches_naive_and_generates(self):
        rng = random.Random(0xB1)
        for case in range(CASES):
            points = [f"p{i}" for i in range(rng.randint(1, 7))]
            space = topology_from_subbase(points, random_family(rng, points))
            fast = minimal_base(space)
            assert fast == minimal_base_naive(space), case
            assert is_base_for(fast, space), case


class TestClosureEquivalence:
    def test_closure_matches_naive_both_sides_of_threshold(self):
        rng = random.Random(0xC1)
        for case in range(CASES):
            attrs = [f"a{i}" for i in range(rng.randint(1, 12))]
            # max_fds up to 40 crosses the small-input/kernel threshold.
            fds = random_fds(rng, attrs, max_fds=40)
            start = rng.sample(attrs, rng.randint(0, len(attrs)))
            assert closure(start, fds) == closure_naive(start, fds), case

    def test_compiled_kernel_matches_naive(self):
        """Exercise FDKernel directly so small inputs hit the kernel too."""
        rng = random.Random(0xC2)
        for case in range(CASES):
            attrs = [f"a{i}" for i in range(rng.randint(1, 10))]
            fds = random_fds(rng, attrs, max_fds=8)
            kern = FDKernel(fds)
            for _ in range(3):
                start = rng.sample(attrs, rng.randint(0, len(attrs)))
                assert kern.closure(start) == closure_naive(start, fds), case

    def test_implication_matches_closure_oracle(self):
        rng = random.Random(0xC3)
        for case in range(CASES):
            attrs = [f"a{i}" for i in range(rng.randint(2, 10))]
            fds = random_fds(rng, attrs, max_fds=30)
            candidate = random_fds(rng, attrs, max_fds=1)
            if not candidate:
                continue
            cand = candidate[0]
            expected = cand.rhs <= closure_naive(cand.lhs, fds)
            assert implies(fds, cand) == expected, case


class TestLosslessEquivalence:
    def test_is_lossless_matches_tableau_oracle(self):
        rng = random.Random(0xD1)
        for case in range(CASES):
            attrs = [f"a{i}" for i in range(rng.randint(1, 6))]
            schema = frozenset(attrs)
            parts = [
                frozenset(rng.sample(attrs, rng.randint(1, len(attrs))))
                for _ in range(rng.randint(1, 4))
            ]
            fds = random_fds(rng, attrs, max_fds=4)
            fast = is_lossless(schema, parts, fds)
            slow = is_lossless_naive(schema, parts, fds)
            assert fast == slow, (case, parts, fds)
            # Memoised route must return the same verdict on a repeat.
            assert is_lossless(schema, parts, fds) == slow, case

    def test_lossless_verdict_invariant_under_reordering(self):
        rng = random.Random(0xD2)
        for case in range(100):
            attrs = [f"a{i}" for i in range(rng.randint(2, 5))]
            schema = frozenset(attrs)
            parts = [
                frozenset(rng.sample(attrs, rng.randint(1, len(attrs))))
                for _ in range(rng.randint(2, 4))
            ]
            fds = random_fds(rng, attrs, max_fds=3)
            shuffled_parts = parts[:]
            rng.shuffle(shuffled_parts)
            shuffled_fds = fds[:]
            rng.shuffle(shuffled_fds)
            assert is_lossless(schema, parts, fds) == \
                is_lossless(schema, shuffled_parts, shuffled_fds), case


@pytest.mark.slow
class TestTopologyAgainstPowersetOracle:
    def test_generated_opens_are_exactly_the_union_closed_family(self):
        """Brute-force oracle: filter the full powerset (exponential)."""
        rng = random.Random(0xE1)
        for case in range(40):
            points = [f"p{i}" for i in range(rng.randint(0, 7))]
            subbase = random_family(rng, points)
            space = topology_from_subbase(points, subbase)
            base = intersections_of_naive(subbase, points)
            subsets = [frozenset()]
            for p in points:
                subsets += [s | {p} for s in subsets]
            for candidate in subsets:
                union = frozenset().union(*(b for b in base if b <= candidate)) \
                    if base else frozenset()
                assert space.is_open(candidate) == (union == candidate), case
