"""Golden tests for the figure/table renderers (repro.viz)."""

from repro.viz import (
    contributor_diagram,
    contributor_table,
    disk_matrix,
    entity_table,
    extension_table,
    generalisation_table,
    isa_forest,
    instance_cut,
    nested_regions,
    specialisation_table,
)


class TestEntityTable:
    def test_header_lines(self, schema):
        text = entity_table(schema)
        assert text.startswith("A = {age, budget, depname, location, name}")
        assert "E = {department, employee, manager, person, worksfor}" in text

    def test_rows_match_paper(self, schema):
        text = entity_table(schema)
        assert "person" in text and "{age, name}" in text
        assert "{age, budget, depname, name}" in text  # manager

    def test_deterministic(self, schema):
        assert entity_table(schema) == entity_table(schema)


class TestStructureTables:
    def test_specialisation_table(self, schema):
        text = specialisation_table(schema)
        assert "S_person" in text
        assert "{employee, manager, person, worksfor}" in text
        assert "V_budget" in text

    def test_generalisation_table(self, schema):
        text = generalisation_table(schema)
        assert "G_worksfor" in text
        assert "{department, employee, person, worksfor}" in text

    def test_contributor_table(self, schema):
        text = contributor_table(schema)
        assert "CO_worksfor" in text
        assert "{department, employee}" in text
        assert "(primitive)" in text  # person, department

    def test_extension_table(self, db):
        text = extension_table(db)
        assert "containment: ok" in text
        assert "extension axiom: ok" in text

    def test_extension_table_flags_violations(self, db):
        broken = db.insert("manager", {
            "name": "eva", "age": 47, "depname": "admin", "budget": 100,
        }, propagate=False)
        assert "VIOLATED" in extension_table(broken)


class TestVennForest:
    def test_forest_shows_hierarchy(self, schema):
        text = isa_forest(schema)
        assert "person" in text and "manager" in text
        # manager is indented under employee:
        lines = text.splitlines()
        employee_line = next(i for i, l in enumerate(lines) if "employee" in l)
        manager_line = next(i for i, l in enumerate(lines) if "manager" in l)
        assert manager_line > employee_line

    def test_shared_specialisation_marked(self, schema):
        text = isa_forest(schema)
        assert "shared" in text  # worksfor appears under two parents

    def test_nested_regions_chains(self, schema):
        text = nested_regions(schema)
        assert "manager c= employee c= person" in text

    def test_contributor_diagram(self, schema):
        text = contributor_diagram(schema)
        assert "worksfor --> department, employee" in text
        assert "manager --> employee" in text


class TestDisks:
    def test_matrix_shape(self, schema):
        text = disk_matrix(schema)
        lines = text.splitlines()
        assert len(lines) == 6  # header + 5 entity types

    def test_matrix_marks(self, schema):
        text = disk_matrix(schema)
        manager_row = next(l for l in text.splitlines() if l.startswith("manager"))
        assert manager_row.count("●") == 4
        person_row = next(l for l in text.splitlines() if l.startswith("person"))
        assert person_row.count("●") == 2

    def test_instance_cut(self, db):
        text = instance_cut(db, "manager")
        assert "ann" in text and "250" in text

    def test_instance_cut_empty(self, schema):
        from repro.core import DatabaseExtension

        empty = DatabaseExtension(schema)
        assert "no instances" in instance_cut(empty, "manager")
