"""Unit tests for attributes and value sets (repro.core.attributes)."""

import pytest

from repro.core import Attribute, AtomicValueSet, AttributeUniverse, is_atomic_value
from repro.errors import AxiomViolationError, SchemaError


class TestAtomicity:
    def test_scalars_atomic(self):
        for value in (1, "x", 3.5, True, None):
            assert is_atomic_value(value)

    def test_containers_not_atomic(self):
        for value in ((1, 2), frozenset({1})):
            assert not is_atomic_value(value)

    def test_mutable_containers_not_atomic(self):
        for value in ([1], {1}, {"a": 1}):
            assert not is_atomic_value(value)


class TestAtomicValueSet:
    def test_construction(self):
        ages = AtomicValueSet("ages", range(5))
        assert len(ages) == 5
        assert 3 in ages

    def test_rejects_decomposable_value(self):
        with pytest.raises(AxiomViolationError) as exc:
            AtomicValueSet("bad", [(1, 2)])
        assert exc.value.axiom == "Attribute Axiom"

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            AtomicValueSet("empty", [])

    def test_rejects_bad_name(self):
        with pytest.raises(SchemaError):
            AtomicValueSet("", [1])

    def test_equality(self):
        assert AtomicValueSet("x", [1, 2]) == AtomicValueSet("x", [2, 1])
        assert AtomicValueSet("x", [1]) != AtomicValueSet("y", [1])


class TestAttribute:
    def test_construction(self):
        a = Attribute("age", 31)
        assert a.name == "age" and a.value == 31

    def test_rejects_decomposable(self):
        with pytest.raises(AxiomViolationError):
            Attribute("age", (1, 2))

    def test_equality_hash(self):
        assert Attribute("a", 1) == Attribute("a", 1)
        assert hash(Attribute("a", 1)) == hash(Attribute("a", 1))
        assert Attribute("a", 1) != Attribute("a", 2)


class TestUniverse:
    def test_from_values(self):
        universe = AttributeUniverse.from_values({"age": range(3), "name": ["x"]})
        assert universe.property_names == frozenset({"age", "name"})
        assert 2 in universe.domain("age")

    def test_unknown_property(self):
        universe = AttributeUniverse.from_values({"age": range(3)})
        with pytest.raises(SchemaError):
            universe.domain("nope")

    def test_validate_attribute(self):
        universe = AttributeUniverse.from_values({"age": range(3)})
        universe.validate_attribute(Attribute("age", 2))
        with pytest.raises(AxiomViolationError):
            universe.validate_attribute(Attribute("age", 99))

    def test_shared_concepts(self):
        names = AtomicValueSet("strings", ["a", "b"])
        universe = AttributeUniverse({"pname": names, "dname": names})
        shared = universe.shared_concepts()
        assert frozenset({"pname", "dname"}) in shared.values()

    def test_paper_separates_name_concepts(self):
        """The employee example keeps name and depname in distinct sets."""
        from repro.core.employee import employee_schema

        universe = employee_schema().universe
        assert universe.domain("name") != universe.domain("depname")
