"""Unit tests for contributors (section 3.3)."""

import pytest

from repro.core import (
    ContributorAssignment,
    augmented_attributes,
    canonical_contributors,
    contributed_attributes,
    is_compound,
    primitive_types,
)
from repro.core.employee import PAPER_CONTRIBUTORS
from repro.errors import SchemaError


class TestCanonical:
    def test_paper_values(self, schema):
        for name, expected in PAPER_CONTRIBUTORS.items():
            cos = {c.name for c in canonical_contributors(schema, schema[name])}
            assert cos == set(expected), name

    def test_contributors_are_direct_generalisations(self, schema):
        """Person is a generalisation of manager but not direct."""
        cos = canonical_contributors(schema, schema["manager"])
        assert schema["person"] not in cos
        assert schema["employee"] in cos

    def test_primitive_types(self, schema):
        assert {e.name for e in primitive_types(schema)} == {"person", "department"}

    def test_is_compound(self, schema):
        assert is_compound(schema, schema["worksfor"])
        assert not is_compound(schema, schema["person"])


class TestAttributeSplit:
    def test_contributed_attributes(self, schema):
        covered = contributed_attributes(schema, schema["worksfor"])
        assert covered == frozenset({"name", "age", "depname", "location"})

    def test_augmented_attributes_manager(self, schema):
        """budget is manager's own descriptive attribute."""
        assert augmented_attributes(schema, schema["manager"]) == frozenset({"budget"})

    def test_augmented_attributes_worksfor_empty(self, schema):
        assert augmented_attributes(schema, schema["worksfor"]) == frozenset()


class TestAssignment:
    def test_default_is_canonical(self, schema):
        assignment = ContributorAssignment(schema)
        assert assignment.matches_canonical()

    def test_override_with_deeper_generalisation(self, schema):
        assignment = ContributorAssignment(
            schema, {"manager": ["person"]}
        )
        assert not assignment.matches_canonical()
        assert {c.name for c in assignment.contributors(schema["manager"])} == {"person"}

    def test_property_enforced_non_generalisation(self, schema):
        with pytest.raises(SchemaError):
            ContributorAssignment(schema, {"person": ["manager"]})

    def test_property_enforced_self(self, schema):
        with pytest.raises(SchemaError):
            ContributorAssignment(schema, {"manager": ["manager"]})

    def test_compound_types(self, schema):
        assignment = ContributorAssignment(schema)
        assert {e.name for e in assignment.compound_types()} == {
            "employee", "manager", "worksfor",
        }
