"""Self-healing cluster: failure detection, deterministic election,
fan-out reads — fast clock-injected contract tests plus the slow
kill-and-heal acceptance sweep.

The fast lane drives :class:`HealthMonitor` and :class:`Coordinator`
with a fake clock, making every suspicion transition and election a
pure function of ticks; the slow lane kills a live primary mid-stream
under 25 seeds and holds the cluster to the acceptance bar: detection
within ``dead_after`` ticks, the most-caught-up replica promoted,
losers re-pinned, and zero acked commits lost.  Assertions carry the
seed, so a CI failure replays from the printed recipe."""

from __future__ import annotations

import json
import warnings
from random import Random

import pytest

from repro.errors import EpochFenced, StoreError, TornTailWarning
from repro.obs import MetricsRegistry, Tracer
from repro.server import (
    Coordinator,
    FailoverClient,
    HealthMonitor,
    ReadBalancer,
    ReplicaEngine,
    RetryPolicy,
    StoreClient,
    StoreServer,
    election_rank,
    engine_probe,
    wire_probe,
)
from repro.store import SessionService, StoreEngine
from repro.workloads import manager_stream, serving_state

from generators import chaos_seeds


def _mk_engine(n=30, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _commit_rows(engine, rows, branch="main"):
    session = SessionService(engine).session(branch)
    return [session.commit(session.begin().insert("manager", row))
            for row in rows]


def _graphs_equal(a, b):
    assert a.graph.branches() == b.graph.branches()
    assert len(a.graph) == len(b.graph)
    for name in a.graph.branches():
        assert a.state(branch=name) == b.state(branch=name), name


class FakeClock:
    """An injected time source: ``advance`` is the only way it moves,
    so detector timing is a pure function of ticks."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float = 1.0) -> float:
        self.t += dt
        return self.t


class _Killable:
    """A probe wrapper with a kill switch — the fast-lane stand-in for
    a process that stopped answering."""

    def __init__(self, target):
        self.probe = engine_probe(target)
        self.dead = False

    def __call__(self) -> dict:
        if self.dead:
            raise ConnectionRefusedError("probe: peer is gone")
        return self.probe()


# ----------------------------------------------------------------------
# the failure detector
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_threshold_validation(self):
        with pytest.raises(StoreError, match="suspect_after"):
            HealthMonitor(suspect_after=1)
        with pytest.raises(StoreError, match="dead_after"):
            HealthMonitor(suspect_after=3, dead_after=3)

    def test_one_dropped_probe_never_raises_suspicion(self):
        clock = FakeClock()
        monitor = HealthMonitor(clock=clock, probe_interval=1.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("one dropped frame")
            return {"role": "primary"}

        monitor.add_peer("p", flaky)
        assert monitor.tick() == []  # the miss caused no transition
        assert monitor.state("p") == "alive"
        clock.advance(1.0)
        monitor.tick()
        assert monitor.healthy("p")

    def test_escalation_walks_alive_suspect_dead(self):
        clock = FakeClock()
        monitor = HealthMonitor(clock=clock, probe_interval=1.0,
                                suspect_after=2, dead_after=4)
        probe = _Killable(None)
        probe.dead = True  # dead from the start
        monitor.add_peer("p", probe)
        states = []
        for _ in range(5):
            clock.advance(1.0)
            monitor.tick()
            states.append(monitor.state("p"))
        assert states == ["alive", "suspect", "suspect", "dead", "dead"]
        transitions = [(e["from"], e["to"]) for e in monitor.events]
        assert transitions == [("alive", "suspect"),
                               ("suspect", "dead")]

    def test_recovery_resets_suspicion(self):
        clock = FakeClock()
        monitor = HealthMonitor(clock=clock, probe_interval=1.0)
        probe = _Killable(None)
        probe.probe = lambda: {"role": "replica", "epoch": 0}
        probe.dead = True
        monitor.add_peer("p", probe)
        for _ in range(2):
            clock.advance(1.0)
            monitor.tick()
        assert monitor.state("p") == "suspect"
        probe.dead = False
        clock.advance(1.0)
        events = monitor.tick()
        assert monitor.state("p") == "alive"
        assert monitor._peers["p"].misses == 0
        assert [(e["from"], e["to"]) for e in events] \
            == [("suspect", "alive")]
        assert monitor.status("p") == {"role": "replica", "epoch": 0}

    def test_probe_cadence_follows_the_injected_clock(self):
        clock = FakeClock()
        monitor = HealthMonitor(clock=clock, probe_interval=1.0)
        calls = {"n": 0}

        def counting():
            calls["n"] += 1
            return {}

        monitor.add_peer("p", counting)
        monitor.tick()  # due immediately on add
        monitor.tick()  # not due again: the clock has not moved
        assert calls["n"] == 1
        clock.advance(0.5)
        monitor.tick()
        assert calls["n"] == 1  # still inside the interval
        clock.advance(0.6)
        monitor.tick()
        assert calls["n"] == 2

    def test_gossip_reports_the_suspicion_table(self):
        clock = FakeClock()
        monitor = HealthMonitor(clock=clock, probe_interval=1.0,
                                suspect_after=2, dead_after=4)
        monitor.add_peer("r1", lambda: {"role": "replica", "epoch": 1,
                                        "behind_bytes": 7})
        monitor.tick()
        gossip = monitor.gossip()
        assert gossip["suspect_after"] == 2
        assert gossip["dead_after"] == 4
        entry = gossip["suspicion"]["r1"]
        assert entry["state"] == "alive"
        assert entry["misses"] == 0 and entry["probes"] == 1
        assert entry["role"] == "replica"
        assert entry["epoch"] == 1 and entry["behind_bytes"] == 7

    def test_unknown_peer_raises(self):
        monitor = HealthMonitor(clock=FakeClock())
        with pytest.raises(StoreError, match="unknown peer"):
            monitor.state("ghost")

    def test_wire_probe_round_trip_and_dead_address(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        engine = _mk_engine(wal=wal)
        with StoreServer(engine) as server:
            probe = wire_probe(server.address, timeout=1.0)
            status = probe()
            assert status["role"] == "primary"
            assert status["epoch"] == 0
        with pytest.raises(OSError):
            wire_probe(("127.0.0.1", 1), timeout=0.2)()
        engine.close()


# ----------------------------------------------------------------------
# the election key
# ----------------------------------------------------------------------
class TestElectionRank:
    def test_offset_orders_within_a_segment(self):
        behind = {"position": {"segment": "s1", "offset": 10}}
        ahead = {"position": {"segment": "s1", "offset": 90}}
        assert election_rank(ahead, "r1") > election_rank(behind, "r9")

    def test_segment_orders_lexicographically(self):
        old = {"position": {"segment": "wal-00000002.jsonl",
                            "offset": 9000}}
        new = {"position": {"segment": "wal-00000010.jsonl",
                            "offset": 1}}
        assert election_rank(new, "r1") > election_rank(old, "r2")

    def test_id_breaks_ties(self):
        status = {"position": {"segment": None, "offset": 42}}
        ranks = sorted(election_rank(status, rid)
                       for rid in ("r2", "r10", "r3"))
        # Lexicographic ids: a deliberate, documented total order.
        assert [r[2] for r in ranks] == ["r10", "r2", "r3"]


# ----------------------------------------------------------------------
# the coordinator: detection -> election -> promotion -> re-pinning
# ----------------------------------------------------------------------
def _standing_cluster(tmp_path, tag, replica_ids=("r1", "r2", "r3")):
    """A primary with committed traffic plus followers of its log."""
    wal = tmp_path / f"{tag}.jsonl"
    primary = _mk_engine(n=30, wal=wal)
    _commit_rows(primary, manager_stream(30, 3))
    replicas = {rid: ReplicaEngine(wal) for rid in replica_ids}
    return wal, primary, replicas


def _shared_monitor(clock, primary_probe, replicas, seed=0):
    monitor = HealthMonitor(clock=clock, probe_interval=1.0,
                            suspect_after=2, dead_after=4, seed=seed)
    monitor.add_peer("primary", primary_probe)
    for rid, rep in replicas.items():
        monitor.add_peer(rid, engine_probe(rep))
    return monitor


class TestCoordinator:
    def test_healthy_primary_never_elects(self, tmp_path):
        wal, primary, replicas = _standing_cluster(tmp_path, "healthy")
        for rep in replicas.values():
            rep.sync()
        clock = FakeClock()
        monitor = _shared_monitor(clock, engine_probe(primary), replicas)
        coords = {rid: Coordinator(rid, rep, monitor)
                  for rid, rep in replicas.items()}
        for _ in range(5):
            clock.advance(1.0)
            for coord in coords.values():
                assert coord.step() is None
        for coord in coords.values():
            assert coord.role == "follower" and coord.elections == 0
        primary.close()

    def test_suspicion_alone_never_elects(self, tmp_path):
        wal, primary, replicas = _standing_cluster(
            tmp_path, "suspect", replica_ids=("r1",))
        replicas["r1"].sync()
        clock = FakeClock()
        probe = _Killable(primary)
        probe.dead = True
        monitor = _shared_monitor(clock, probe, replicas)
        coord = Coordinator("r1", replicas["r1"], monitor)
        for tick in range(1, 3):
            clock.advance(1.0)
            assert coord.step() is None, f"tick {tick}"
        assert monitor.state("primary") == "suspect"
        assert coord.elections == 0  # suspect: no election yet
        for _ in range(2):
            clock.advance(1.0)
            coord.step()
        assert monitor.state("primary") == "dead"
        assert coord.elections >= 1
        assert coord.role == "primary"
        coord.engine.wal.close()
        primary.close()

    def test_kill_elects_most_caught_up_and_losers_repin(self, tmp_path):
        wal, primary, replicas = _standing_cluster(tmp_path, "elect")
        replicas["r1"].sync(max_records=2)  # strictly behind
        replicas["r2"].sync()
        replicas["r3"].sync()
        replicas["r1"].sync = lambda max_records=None: 0  # frozen laggard
        primary.close()
        clock = FakeClock()
        probe = _Killable(primary)
        probe.dead = True
        monitor = _shared_monitor(clock, probe, replicas)
        coords = {rid: Coordinator(rid, rep, monitor)
                  for rid, rep in replicas.items()}
        promoted_event = None
        for _ in range(4):
            clock.advance(1.0)
            for rid in ("r1", "r2", "r3"):
                event = coords[rid].step()
                if event and event["action"] == "promoted":
                    promoted_event = event
        assert promoted_event is not None
        # Position ties between r2 and r3; the id breaks it upward.
        assert promoted_event["replica_id"] == "r3"
        assert coords["r3"].role == "primary"
        assert coords["r3"].engine.epoch == 1
        assert set(promoted_event["candidates"]) >= {"r1", "r3"}
        assert promoted_event["candidates"]["r1"] \
            < promoted_event["candidates"]["r3"]
        deferred = [e for e in coords["r2"].events
                    if e["action"] == "deferred"]
        assert deferred and deferred[-1]["winner"] == "r3"
        # The losers cross the stamp and re-pin to the winner.
        del replicas["r1"].sync  # unfreeze: back to the class method
        for _ in range(2):
            clock.advance(1.0)
            for rid in ("r1", "r2"):
                coords[rid].step()
        for rid in ("r1", "r2"):
            repins = [e for e in coords[rid].events
                      if e["action"] == "repinned"]
            assert repins and repins[-1]["epoch"] == 1, rid
            assert coords[rid].primary_id == "r3", rid
            assert coords[rid].role == "follower", rid
            assert replicas[rid].engine.epoch == 1, rid
        _graphs_equal(replicas["r1"].engine, coords["r3"].engine)
        coords["r3"].engine.wal.close()

    def test_split_brain_race_loser_is_fenced_then_repins(self, tmp_path):
        """Two coordinators with disjoint membership views both elect
        themselves; the epoch stamp's race guard lets exactly one win,
        the other records ``election-lost`` and resumes following."""
        wal, primary, replicas = _standing_cluster(
            tmp_path, "split", replica_ids=("rA", "rB"))
        replicas["rA"].sync()
        replicas["rB"].sync()
        primary.close()
        clock = FakeClock()
        probes = {rid: _Killable(primary) for rid in ("rA", "rB")}
        for probe in probes.values():
            probe.dead = True
        # Disjoint views: each monitor knows only itself and the
        # primary, so each coordinator's election has one candidate.
        monitors, coords = {}, {}
        for rid in ("rA", "rB"):
            monitors[rid] = _shared_monitor(clock, probes[rid], {})
            coords[rid] = Coordinator(rid, replicas[rid], monitors[rid])
        # Freeze rB between its catch-up and its stamp (the PR 8
        # race-window trick): it cannot see rA's stamp land.
        replicas["rB"].sync = lambda max_records=None: 0
        replicas["rB"].catch_up = lambda **kwargs: None
        replicas["rB"].behind_bytes = lambda: 0
        events = {"rA": [], "rB": []}
        for _ in range(4):
            clock.advance(1.0)
            for rid in ("rA", "rB"):
                event = coords[rid].step()
                if event:
                    events[rid].append(event)
        assert coords["rA"].role == "primary"
        assert coords["rA"].engine.epoch == 1
        lost = [e for e in events["rB"] if e["action"] == "election-lost"]
        assert lost and lost[0]["held"] == 0 and lost[0]["current"] == 1
        assert coords["rB"].role == "follower"
        assert replicas["rB"].promoted is False
        del replicas["rB"].sync
        del replicas["rB"].catch_up, replicas["rB"].behind_bytes
        clock.advance(1.0)
        event = coords["rB"].step()
        assert event is not None and event["action"] == "repinned"
        assert event["epoch"] == 1
        _graphs_equal(replicas["rB"].engine, coords["rA"].engine)
        coords["rA"].engine.wal.close()

    def test_dead_deferred_winner_drops_out_next_round(self, tmp_path):
        """A winner that dies before stamping is declared dead after
        ``dead_after`` more misses and the next election excludes it —
        the loop stays bounded, nobody waits forever."""
        wal, primary, replicas = _standing_cluster(tmp_path, "dropout")
        for rep in replicas.values():
            rep.sync()
        primary.close()
        clock = FakeClock()
        primary_probe = _Killable(primary)
        primary_probe.dead = True
        r3_probe = _Killable(replicas["r3"])
        monitor = HealthMonitor(clock=clock, probe_interval=1.0,
                                suspect_after=2, dead_after=4)
        monitor.add_peer("primary", primary_probe)
        monitor.add_peer("r1", engine_probe(replicas["r1"]))
        monitor.add_peer("r2", engine_probe(replicas["r2"]))
        monitor.add_peer("r3", r3_probe)
        coords = {rid: Coordinator(rid, replicas[rid], monitor)
                  for rid in ("r1", "r2")}  # r3 has no coordinator
        for _ in range(4):
            clock.advance(1.0)
            for rid in ("r1", "r2"):
                coords[rid].step()
        deferred = [e for e in coords["r2"].events
                    if e["action"] == "deferred"]
        assert deferred and deferred[-1]["winner"] == "r3"
        assert coords["r2"].role == "follower"
        r3_probe.dead = True  # the deferred-to winner dies too
        promoted = None
        for _ in range(4):
            clock.advance(1.0)
            for rid in ("r1", "r2"):
                event = coords[rid].step()
                if event and event["action"] == "promoted":
                    promoted = event
        assert monitor.state("r3") == "dead"
        assert promoted is not None and promoted["replica_id"] == "r2"
        assert "r3" not in promoted["candidates"]
        assert coords["r2"].role == "primary"
        coords["r2"].engine.wal.close()

    def test_no_candidates_is_an_event_not_a_crash(self, tmp_path):
        wal, primary, replicas = _standing_cluster(
            tmp_path, "barren", replica_ids=("r1",))
        # r1 never syncs: not ready, so it cannot stand for election.
        primary.close()
        clock = FakeClock()
        probe = _Killable(primary)
        probe.dead = True
        monitor = _shared_monitor(clock, probe, {})
        coord = Coordinator("r1", replicas["r1"], monitor,
                            sync_on_step=False)
        event = None
        for _ in range(4):
            clock.advance(1.0)
            event = coord.step()
        assert event is not None
        assert event["action"] == "no-candidates"
        assert coord.role == "follower"

    def test_on_promoted_callback_and_describe(self, tmp_path):
        wal, primary, replicas = _standing_cluster(
            tmp_path, "callback", replica_ids=("r1",))
        replicas["r1"].sync()
        primary.close()
        clock = FakeClock()
        probe = _Killable(primary)
        probe.dead = True
        monitor = _shared_monitor(clock, probe, replicas)
        handed = []
        coord = Coordinator("r1", replicas["r1"], monitor,
                            on_promoted=handed.append)
        for _ in range(4):
            clock.advance(1.0)
            coord.step()
        assert handed == [coord.engine]
        summary = coord.describe()
        assert summary["role"] == "primary"
        assert summary["replica_id"] == "r1"
        assert summary["epoch"] == 1
        assert summary["elections"] == 1
        coord.engine.wal.close()


# ----------------------------------------------------------------------
# fan-out reads
# ----------------------------------------------------------------------
class _StubMonitor:
    def __init__(self, states):
        self.states = states

    def state(self, peer_id):
        return self.states.get(peer_id, "alive")


class TestReadBalancer:
    def test_requires_a_replica(self):
        with pytest.raises(StoreError, match="at least one replica"):
            ReadBalancer({})

    def test_spreads_reads_across_replicas(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        rows = manager_stream(30, 2)
        _commit_rows(primary, rows)
        reps = {rid: ReplicaEngine(wal) for rid in ("r1", "r2")}
        servers = {}
        for rid, rep in reps.items():
            rep.sync()
            servers[rid] = StoreServer(rep, sync_interval=0)
            servers[rid].start_background()
        try:
            with ReadBalancer({rid: s.address
                               for rid, s in servers.items()},
                              seed=0) as balancer:
                for _ in range(8):
                    head = balancer.read("manager")
                    assert rows[0] in head and rows[1] in head
                assert balancer.reads["r1"] == 4
                assert balancer.reads["r2"] == 4
                assert balancer.fallbacks == {"primary": 0, "stale": 0}
        finally:
            for server in servers.values():
                server.stop()
            primary.close()

    def test_suspect_replicas_are_ejected(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 1))
        reps = {rid: ReplicaEngine(wal) for rid in ("r1", "r2")}
        servers = {}
        for rid, rep in reps.items():
            rep.sync()
            servers[rid] = StoreServer(rep, sync_interval=0)
            servers[rid].start_background()
        try:
            monitor = _StubMonitor({"r1": "suspect"})
            with ReadBalancer({rid: s.address
                               for rid, s in servers.items()},
                              monitor=monitor, seed=0) as balancer:
                for _ in range(4):
                    balancer.read("manager")
                assert balancer.reads == {"r1": 0, "r2": 4}
        finally:
            for server in servers.values():
                server.stop()
            primary.close()

    def test_staleness_budget_keeps_lagging_replicas_out(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        rows = manager_stream(30, 3)
        _commit_rows(primary, rows[:1])
        fresh, stale = ReplicaEngine(wal), ReplicaEngine(wal)
        fresh.sync()
        stale.sync()
        _commit_rows(primary, rows[1:])
        fresh.sync()  # stale deliberately does not
        assert stale.behind_bytes() > 0
        servers = {"fresh": StoreServer(fresh, sync_interval=0),
                   "stale": StoreServer(stale, sync_interval=0)}
        for server in servers.values():
            server.start_background()
        try:
            with ReadBalancer({rid: s.address
                               for rid, s in servers.items()},
                              staleness_budget=0, refresh_every=1,
                              seed=0) as balancer:
                for _ in range(4):
                    head = balancer.read("manager")
                    assert rows[2] in head  # never a stale answer
                assert balancer.reads == {"fresh": 4, "stale": 0}
        finally:
            for server in servers.values():
                server.stop()
            primary.close()

    def test_falls_back_to_the_primary(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        rows = manager_stream(30, 1)
        _commit_rows(primary, rows)
        with StoreServer(primary) as server:
            with ReadBalancer({"r1": ("127.0.0.1", 1)},  # dead replica
                              primary=server.address,
                              timeout=0.5, seed=0) as balancer:
                assert rows[0] in balancer.read("manager")
                assert balancer.fallbacks["primary"] == 1
        primary.close()

    def test_degrades_to_a_stale_replica_last(self, tmp_path):
        """Primary down, the only replica over its budget: the last
        rung serves the stale-but-reachable answer instead of failing.
        """
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        rows = manager_stream(30, 2)
        _commit_rows(primary, rows[:1])
        rep = ReplicaEngine(wal)
        rep.sync()
        _commit_rows(primary, rows[1:])  # the replica never sees this
        primary.close()
        with StoreServer(rep, sync_interval=0) as server:
            with ReadBalancer({"r1": server.address},
                              primary=("127.0.0.1", 1),  # dead
                              staleness_budget=0, refresh_every=1,
                              timeout=0.5, seed=0) as balancer:
                head = balancer.read("manager")
                assert rows[0] in head and rows[1] not in head
                assert balancer.fallbacks["stale"] == 1

    def test_raises_when_no_rung_answers(self):
        with ReadBalancer({"r1": ("127.0.0.1", 1)},
                          primary=("127.0.0.1", 1),
                          timeout=0.2, seed=0) as balancer:
            with pytest.raises(OSError):
                balancer.read("manager")


# ----------------------------------------------------------------------
# gossip over the wire
# ----------------------------------------------------------------------
class TestGossip:
    def test_status_carries_the_suspicion_table(self, tmp_path):
        wal = tmp_path / "w.jsonl"
        primary = _mk_engine(wal=wal)
        _commit_rows(primary, manager_stream(30, 1))
        monitor = HealthMonitor(clock=FakeClock(), probe_interval=1.0)
        monitor.add_peer("r1", lambda: {"role": "replica", "epoch": 0,
                                        "behind_bytes": 0})
        monitor.tick()
        with StoreServer(primary, cluster=monitor) as server:
            with StoreClient(*server.address) as client:
                status = client.status()
        cluster = status["cluster"]
        assert cluster["suspicion"]["r1"]["state"] == "alive"
        assert cluster["suspect_after"] == monitor.suspect_after
        # A replica front end merges the same gossip object.
        rep = ReplicaEngine(wal)
        rep.sync()
        with StoreServer(rep, sync_interval=0,
                         cluster=monitor) as server:
            with StoreClient(*server.address) as client:
                status = client.status()
        assert status["role"] == "replica"
        assert status["cluster"]["suspicion"]["r1"]["state"] == "alive"
        primary.close()

    def test_status_without_a_cluster_is_unchanged(self, tmp_path):
        primary = _mk_engine()
        with StoreServer(primary) as server:
            with StoreClient(*server.address) as client:
                assert "cluster" not in client.status()
        primary.close()


# ----------------------------------------------------------------------
# the slow lane: the kill-and-heal acceptance sweep
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestKillAndHealSweep:
    def test_cluster_heals_itself_without_losing_acked_commits(
            self, tmp_path):
        """The acceptance bar, 25 seeds: kill a live primary mid
        write stream (half the seeds leave a torn half-record on the
        log's tail); every replica's coordinator must detect the death
        within ``dead_after`` injected-clock ticks, elect the most
        caught-up replica, promote exactly one new primary, re-pin the
        losers, and serve every acked commit to the failover client
        under the new epoch."""
        for seed in chaos_seeds(25):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", TornTailWarning)
                try:
                    self._one_seed(tmp_path, seed)
                except BaseException:
                    # The replay seed is in the assertion message; the
                    # snapshot says what the cluster was *doing* —
                    # probes, misses, transitions, elections — when it
                    # failed.
                    print(f"\nobservability at failure (seed={seed}):")
                    print(json.dumps(self._obs.snapshot(), indent=2,
                                     sort_keys=True))
                    for event in self._obs_tracer.recent(20):
                        print(f"  {event['name']} {event['tags']}")
                    raise

    def _one_seed(self, tmp_path, seed):
        rng = Random(seed)
        wal = tmp_path / f"heal-{seed}.jsonl"
        engine = _mk_engine(n=30, wal=wal)
        rows = manager_stream(30, 7)
        primary_server = StoreServer(engine)
        primary_server.start_background()
        fc = FailoverClient(
            [primary_server.address],
            policy=RetryPolicy(seed=seed, base_delay=0.01,
                               max_delay=0.05),
            deadline=10.0, timeout=2.0)
        pre = rng.randrange(2, 6)
        acked = [fc.run([{"op": "insert", "relation": "manager",
                          "row": row}]) for row in rows[:pre]]

        ids = ("r1", "r2", "r3")
        replicas = {rid: ReplicaEngine(wal) for rid in ids}
        laggy_id = rng.choice(ids)
        for rid, rep in replicas.items():
            if rid == laggy_id:  # strictly behind: pre+1 records exist
                rep.sync(max_records=rng.randrange(1, pre + 1))
            else:
                rep.sync()
        # Freeze the laggard so supervision syncs don't catch it up —
        # its stale rank is the point of the seed.
        replicas[laggy_id].sync = lambda max_records=None: 0

        # The kill, mid write stream: the server goes away and, on
        # half the seeds, the crash leaves a torn half-record on the
        # tail (promotion's repair must absorb it).
        primary_addr = primary_server.address
        primary_server.stop()
        engine.close()
        torn = rng.random() < 0.5
        if torn:
            with open(wal, "ab") as f:
                f.write(b'{"type": "commit", "ver')

        clock = FakeClock()
        self._obs = MetricsRegistry()
        self._obs_tracer = Tracer()
        monitors, coords = {}, {}
        for rid in ids:
            monitor = HealthMonitor(clock=clock, probe_interval=1.0,
                                    suspect_after=2, dead_after=4,
                                    seed=seed)
            monitor.attach_observability(self._obs, self._obs_tracer)
            monitor.add_peer("primary",
                             wire_probe(primary_addr, timeout=0.2))
            for other in ids:
                if other != rid:
                    monitor.add_peer(other,
                                     engine_probe(replicas[other]))
            monitors[rid] = monitor
            coords[rid] = Coordinator(rid, replicas[rid], monitor,
                                      promote_timeout=2.0)
            coords[rid].attach_observability(self._obs,
                                             self._obs_tracer)

        recipe = (f"seed={seed} pre={pre} laggy={laggy_id} "
                  f"torn={torn}")
        max_ticks = monitors["r1"].dead_after + 2  # the bounded budget
        ticks_used = None
        order = list(ids)
        for tick in range(1, max_ticks + 1):
            clock.advance(1.0)
            rng.shuffle(order)
            for rid in order:
                coords[rid].step()
            if any(c.role == "primary" for c in coords.values()):
                ticks_used = tick
                break
        primaries = [rid for rid, c in coords.items()
                     if c.role == "primary"]
        assert ticks_used is not None, (
            f"no promotion within {max_ticks} ticks: {recipe}")
        assert len(primaries) == 1, (
            f"split brain: {primaries}: {recipe}")
        winner = primaries[0]
        expected = max(rid for rid in ids if rid != laggy_id)
        assert winner == expected, (
            f"wrong winner {winner} (expected {expected}): {recipe}")
        promoted = coords[winner].engine
        assert promoted.epoch == 1, recipe

        # Heal: the laggard thaws, everyone re-pins to the winner.
        del replicas[laggy_id].sync
        for _ in range(4):
            clock.advance(1.0)
            for rid in ids:
                coords[rid].step()
        for rid in ids:
            if rid == winner:
                continue
            assert coords[rid].role == "follower", f"{rid}: {recipe}"
            assert coords[rid].primary_id == winner, f"{rid}: {recipe}"
            assert replicas[rid].engine.epoch == 1, f"{rid}: {recipe}"

        # Zero acked commits lost: the client re-resolves to the new
        # primary and every pre-kill ack plus the post-kill stream is
        # in the promoted head.
        with StoreServer(promoted) as successor:
            fc.add_address(successor.address)
            fc.queue([{"op": "insert", "relation": "manager",
                       "row": rows[pre]}])
            fc.queue([{"op": "insert", "relation": "manager",
                       "row": rows[pre + 1]}])
            results = fc.flush()
            assert len(results) == 2, recipe
            assert fc.epoch == 1, recipe
            head = fc.read("manager")
        fc.close()
        for i, result in enumerate(acked):
            assert rows[i] in head, (
                f"acked commit lost: version={result['version']} "
                f"{recipe}")
        for i in (pre, pre + 1):
            assert rows[i] in head, f"post-failover row lost: {recipe}"
        promoted.wal.close()
        for rep in replicas.values():
            rep.close()
