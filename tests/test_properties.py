"""Property-based tests (hypothesis) for the core invariants.

Strategies build small random attribute-set families (valid schemas by
construction) and random consistent extensions; the properties are the
paper's structural laws, checked over the whole generated space.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    ArmstrongEngine,
    GeneralisationStructure,
    SpecialisationStructure,
    agreement_report,
    canonical_contributors,
    nucleus,
    transitive_closure,
    verify_corollary,
)
from repro.relational import (
    FD,
    Relation,
    closure,
    implies,
    minimal_cover,
    natural_join,
    project,
)
from repro.topology import (
    alexandrov_space,
    is_t0,
    specialisation_preorder,
    topology_from_subbase,
)
from repro.workloads import random_extension, random_premises, schema_of_attribute_sets

ATTRS = ["a", "b", "c", "d", "e"]

attr_sets = st.sets(
    st.sets(st.sampled_from(ATTRS), min_size=1, max_size=4).map(frozenset),
    min_size=1,
    max_size=6,
)

point_families = st.sets(
    st.sets(st.sampled_from("pqrst"), max_size=4).map(frozenset),
    min_size=0,
    max_size=5,
)


def build_schema(sets):
    return schema_of_attribute_sets(sets)


class TestTopologyProperties:
    @given(family=point_families)
    @settings(max_examples=60, deadline=None)
    def test_subbase_generation_yields_topology(self, family):
        """The generated family always satisfies the topology axioms
        (FiniteSpace validates on construction)."""
        points = frozenset("pqrst")
        space = topology_from_subbase(points, family)
        assert space.is_open(frozenset()) and space.is_open(points)

    @given(family=point_families)
    @settings(max_examples=60, deadline=None)
    def test_alexandrov_roundtrip(self, family):
        points = frozenset("pqrst")
        space = topology_from_subbase(points, family)
        up = specialisation_preorder(space)
        rebuilt = alexandrov_space(points, up)
        assert rebuilt.opens == space.opens

    @given(family=point_families)
    @settings(max_examples=40, deadline=None)
    def test_interior_closure_duality(self, family):
        points = frozenset("pqrst")
        space = topology_from_subbase(points, family)
        subset = frozenset("pq")
        assert space.interior(subset) == points - space.closure(points - subset)


class TestIntensionProperties:
    @given(sets=attr_sets)
    @settings(max_examples=80, deadline=None)
    def test_S_and_G_duality(self, sets):
        schema = build_schema(sets)
        spec = SpecialisationStructure(schema)
        gen = GeneralisationStructure(schema)
        for x in schema:
            for y in schema:
                assert (y in spec.S(x)) == (x in gen.G(y))

    @given(sets=attr_sets)
    @settings(max_examples=60, deadline=None)
    def test_constructions_cross_check(self, sets):
        schema = build_schema(sets)
        assert SpecialisationStructure(schema).cross_check()
        assert GeneralisationStructure(schema).cross_check()

    @given(sets=attr_sets)
    @settings(max_examples=60, deadline=None)
    def test_minimal_opens_are_S_sets(self, sets):
        schema = build_schema(sets)
        spec = SpecialisationStructure(schema)
        assert spec.minimal_open_is_S()

    @given(sets=attr_sets)
    @settings(max_examples=60, deadline=None)
    def test_intension_topology_is_t0(self, sets):
        """The Entity Type Axiom forces T0."""
        schema = build_schema(sets)
        assert is_t0(SpecialisationStructure(schema).space)

    @given(sets=attr_sets)
    @settings(max_examples=60, deadline=None)
    def test_S_intersect_G_is_singleton(self, sets):
        """S_x intersect G_x == {x} — the paper's general observation."""
        schema = build_schema(sets)
        spec = SpecialisationStructure(schema)
        gen = GeneralisationStructure(schema)
        for x in schema:
            assert spec.S(x) & gen.G(x) == frozenset({x})

    @given(sets=attr_sets)
    @settings(max_examples=60, deadline=None)
    def test_contributors_are_maximal_proper_generalisations(self, sets):
        schema = build_schema(sets)
        gen = GeneralisationStructure(schema)
        for e in schema:
            cos = canonical_contributors(schema, e)
            for c in cos:
                assert c in gen.G(e) and c != e
                # no strictly-between type:
                for g in gen.G(e):
                    if g not in (e, c):
                        assert not (c.attributes < g.attributes)

    @given(sets=attr_sets)
    @settings(max_examples=40, deadline=None)
    def test_nucleus_transitively_closed(self, sets):
        schema = build_schema(sets)
        for e in schema:
            n = nucleus(schema, e)
            assert transitive_closure(n) == n


class TestExtensionProperties:
    @given(sets=attr_sets, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_generated_extensions_consistent(self, sets, seed):
        schema = build_schema(sets)
        db = random_extension(random.Random(seed), schema, rows_per_leaf=2)
        assert db.satisfies_containment()
        assert db.satisfies_extension_axiom()

    @given(sets=attr_sets, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_mapping_corollary_on_random_states(self, sets, seed):
        schema = build_schema(sets)
        db = random_extension(random.Random(seed), schema, rows_per_leaf=2)
        assert verify_corollary(db) == {"a": True, "b": True, "c": True}

    @given(sets=attr_sets, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_propagating_insert_preserves_consistency(self, sets, seed):
        rng = random.Random(seed)
        schema = build_schema(sets)
        db = random_extension(rng, schema, rows_per_leaf=1)
        target = rng.choice(sorted(schema))
        from repro.workloads import random_tuple

        grown = db.insert(target, random_tuple(rng, schema, target.attributes))
        assert grown.satisfies_containment()


class TestDependencyProperties:
    @given(sets=attr_sets, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_soundness_universal(self, sets, seed):
        """Derivable never outruns semantic implication."""
        schema = build_schema(sets)
        premises = random_premises(random.Random(seed), schema, count=2)
        report = agreement_report(schema, premises)
        assert not report["sound_violations"]

    @given(sets=attr_sets, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_derived_fds_hold_on_premise_satisfying_states(self, sets, seed):
        """Model-checking soundness: every derived fd holds in a generated
        consistent extension that satisfies the premises."""
        from repro.core.fd import holds

        rng = random.Random(seed)
        schema = build_schema(sets)
        db = random_extension(rng, schema, rows_per_leaf=2)
        # Premises: dependencies that actually hold in db.
        candidates = random_premises(rng, schema, count=3)
        premises = [fd for fd in candidates if holds(fd, db)]
        engine = ArmstrongEngine(schema, premises)
        for fd in engine.closure():
            assert holds(fd, db), fd


class TestRelationalProperties:
    small_fds = st.lists(
        st.tuples(
            st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2),
            st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2),
        ).map(lambda lr: FD(lr[0], lr[1])),
        max_size=5,
    )

    @given(fds=small_fds)
    @settings(max_examples=60, deadline=None)
    def test_minimal_cover_equivalent(self, fds):
        cover = minimal_cover(fds)
        for fd in fds:
            assert implies(cover, fd)
        for fd in cover:
            assert implies(fds, fd)

    @given(fds=small_fds, start=st.sets(st.sampled_from(ATTRS), max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_closure_monotone_and_idempotent(self, fds, start):
        once = closure(start, fds)
        assert frozenset(start) <= once
        assert closure(once, fds) == once

    rows = st.lists(
        st.fixed_dictionaries({"a": st.integers(0, 2), "b": st.integers(0, 2),
                               "c": st.integers(0, 2)}),
        max_size=6,
    )

    @given(rows=rows)
    @settings(max_examples=60, deadline=None)
    def test_join_of_projections_contains_original(self, rows):
        """The lossy-join inequality: R subseteq pi_X(R) * pi_Y(R)."""
        rel = Relation({"a", "b", "c"}, rows)
        left = project(rel, {"a", "b"})
        right = project(rel, {"b", "c"})
        joined = natural_join(left, right)
        assert rel.tuples <= joined.tuples
