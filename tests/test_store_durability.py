"""Durability, recovery, checkpointing, and GC tests for the store.

The crash-safety contract under test: a torn *final* WAL line (the
signature of a crash mid-append) is tolerated — ``records`` warns and
yields the intact prefix, ``repair`` truncates it off, ``replay``
rebuilds the prefix — while corruption anywhere before the final record
raises.  The slow lane injects a crash at *every* byte offset of a
log's last record and checks the replayed graph is exactly the full
graph or exactly the prefix, nothing else.

Checkpoint/GC contract: replay from the newest checkpoint rebuilds
branch heads state-for-state equal to a full replay (differential
tests), pruned segments are never load-bearing, and ``gc`` keeps
resident versions bounded by the keep window plus pins — with the
collected states becoming actual garbage (weakref asserts).
"""

import gc as pygc
import os
import threading
import warnings
import weakref

import pytest

from repro.errors import StoreError, TornTailWarning
from repro.store import (
    SessionService,
    StoreEngine,
    WriteAheadLog,
)
from repro.workloads import (
    disjoint_commit_specs,
    manager_stream,
    serving_state,
)


def _mk_engine(n=60, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _commit_rows(engine, rows, branch="main"):
    """One single-insert commit per row; returns the new versions."""
    session = SessionService(engine).session(branch)
    return [session.commit(session.begin().insert("manager", row))
            for row in rows]


def _head_states(engine):
    return {name: engine.state(branch=name)
            for name in engine.graph.heads}


@pytest.fixture
def logged(tmp_path):
    """A closed single-file WAL holding a snapshot + 5 commits."""
    wal = tmp_path / "store.wal"
    engine = _mk_engine(wal=wal)
    _commit_rows(engine, manager_stream(60, 5))
    engine.close()
    return wal, engine


# ----------------------------------------------------------------------
# torn tails and corruption
# ----------------------------------------------------------------------
class TestTornTail:
    def test_records_tolerates_torn_final_line(self, logged):
        wal, _ = logged
        data = wal.read_bytes()
        wal.write_bytes(data[:-7])  # tear the last record mid-line
        with pytest.warns(TornTailWarning):
            records = list(WriteAheadLog.records(wal))
        assert len(records) == 5  # snapshot + 4 intact commits
        assert records[-1]["version"] == "v4"

    def test_torn_tail_policies(self, logged):
        wal, _ = logged
        wal.write_bytes(wal.read_bytes()[:-7])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = list(WriteAheadLog.records(wal, torn_tail="ignore"))
        assert len(records) == 5
        with pytest.raises(StoreError):
            list(WriteAheadLog.records(wal, torn_tail="error"))
        with pytest.raises(ValueError):
            list(WriteAheadLog.records(wal, torn_tail="nonsense"))

    def test_record_missing_final_newline_is_complete(self, logged):
        wal, _ = logged
        wal.write_bytes(wal.read_bytes().rstrip(b"\n"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = list(WriteAheadLog.records(wal))
        assert len(records) == 6
        assert WriteAheadLog.repair(wal) == 0

    def test_repair_truncates_and_is_idempotent(self, logged):
        wal, _ = logged
        intact = wal.read_bytes()
        torn = intact[:-7]
        wal.write_bytes(torn)
        last_line_start = intact.rstrip(b"\n").rfind(b"\n") + 1
        assert WriteAheadLog.repair(wal) == len(torn) - last_line_start
        assert wal.read_bytes() == intact[:last_line_start]
        assert WriteAheadLog.repair(wal) == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(list(WriteAheadLog.records(wal))) == 5

    def test_replay_recovers_intact_prefix(self, logged):
        wal, original = logged
        wal.write_bytes(wal.read_bytes()[:-7])
        with pytest.warns(TornTailWarning):
            engine = StoreEngine.replay(wal)
        assert len(engine.graph) == 5  # v0..v4: the torn v5 is dropped
        assert engine.head_version().vid == "v4"
        assert engine.state() == original.state("v4")
        # Replay repaired the file on disk: a second read is clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(list(WriteAheadLog.records(wal))) == 5

    def test_mid_log_corruption_raises(self, logged):
        wal, _ = logged
        lines = wal.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"type": "commit", "version"\n'  # torn, but not final
        wal.write_bytes(b"".join(lines))
        with pytest.raises(StoreError, match="corrupt WAL line 3"):
            list(WriteAheadLog.records(wal))
        with pytest.raises(StoreError, match="not a torn tail"):
            WriteAheadLog.repair(wal)
        with pytest.raises(StoreError):
            StoreEngine.replay(wal)

    def test_non_object_final_line_is_torn_not_trusted(self, logged):
        wal, _ = logged
        with open(wal, "ab") as fh:
            fh.write(b'"just a string"\n')
        with pytest.warns(TornTailWarning):
            records = list(WriteAheadLog.records(wal))
        assert len(records) == 6


# ----------------------------------------------------------------------
# WAL lifecycle: close, creation durability, rotation
# ----------------------------------------------------------------------
class TestWalLifecycle:
    def test_append_after_close_raises_store_error(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        wal.append({"type": "noop"})
        wal.close()
        with pytest.raises(StoreError, match="closed"):
            wal.append({"type": "noop"})
        with pytest.raises(StoreError, match="closed"):
            wal.rotate()
        wal.close()  # idempotent

    def test_creation_and_rotation_fsync_directory(self, tmp_path,
                                                   monkeypatch):
        import repro.store.wal as walmod

        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(walmod.os, "fsync", spy)
        wal = WriteAheadLog(tmp_path / "seg", segment_records=2)
        assert synced, "creating a segment must fsync its directory"
        created = len(synced)
        wal.append({"type": "noop"})
        wal.append({"type": "noop"})
        wal.append({"type": "noop"})  # third append rotates
        assert len(WriteAheadLog.segment_paths(tmp_path / "seg")) == 2
        assert len(synced) > created, "rotation must fsync the directory"
        wal.close()

    def test_single_file_creation_fsyncs_directory(self, tmp_path,
                                                   monkeypatch):
        import repro.store.wal as walmod

        synced = []
        monkeypatch.setattr(walmod.os, "fsync",
                            lambda fd: synced.append(fd))
        WriteAheadLog(tmp_path / "w.jsonl").close()
        assert synced

    def test_rotation_bounds(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "seg", segment_records=2)
        for _ in range(5):
            wal.append({"type": "noop"})
        segments = WriteAheadLog.segment_paths(tmp_path / "seg")
        assert [p.name for p in segments] == [
            "wal.000001.jsonl", "wal.000002.jsonl", "wal.000003.jsonl"]
        assert wal.current_segment == segments[-1]
        wal.close()
        # Reopening appends to the highest segment, not a new one.
        wal = WriteAheadLog(tmp_path / "seg", segment_records=2)
        assert wal.current_segment == segments[-1]
        wal.close()

    def test_records_span_segments_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "seg", segment_records=3)
        for i in range(8):
            wal.append({"type": "noop", "i": i})
        wal.close()
        assert [r["i"] for r in WriteAheadLog.records(tmp_path / "seg")] \
            == list(range(8))

    def test_engine_refuses_populated_wal(self, logged):
        wal, _ = logged
        with pytest.raises(StoreError, match="already has records"):
            _mk_engine(wal=wal)


# ----------------------------------------------------------------------
# checkpointing and replay-from-checkpoint
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_checkpoint_requires_wal(self):
        engine = _mk_engine()
        with pytest.raises(StoreError, match="WAL-backed"):
            engine.checkpoint()

    def test_single_file_inline_checkpoint(self, tmp_path):
        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal)
        rows = manager_stream(60, 8)
        _commit_rows(engine, rows[:5])
        record = engine.checkpoint()
        assert record["seq"] == 5
        _commit_rows(engine, rows[5:])
        engine.close()

        partial = StoreEngine.replay(wal)
        assert len(partial.graph) == 4  # v5 floor + v6..v8
        assert partial.head_version().vid == "v8"
        full = StoreEngine.replay(wal, from_checkpoint=False)
        assert len(full.graph) == 9
        assert partial.state() == full.state() == engine.state()
        floor = partial.graph.get("v5")
        assert floor.parent is None
        assert floor.state == full.state("v5")

    def test_auto_checkpoint_every(self, tmp_path):
        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal, checkpoint_every=5)
        _commit_rows(engine, manager_stream(60, 12))
        engine.close()
        kinds = [r["type"] for r in WriteAheadLog.records(wal)]
        assert kinds.count("checkpoint") == 2
        # They land right after the 5th and 10th commits.
        assert kinds.index("checkpoint") == 6

    def test_checkpoint_heads_a_fresh_segment(self, tmp_path):
        engine = _mk_engine(
            wal=WriteAheadLog(tmp_path / "seg", segment_records=500))
        _commit_rows(engine, manager_stream(60, 4))
        engine.checkpoint()
        engine.close()
        segments = WriteAheadLog.segment_paths(tmp_path / "seg")
        assert len(segments) == 2
        first = WriteAheadLog.first_record(segments[-1])
        assert first["type"] == "checkpoint"

    def test_prune_then_replay_differential(self, tmp_path):
        path = tmp_path / "seg"
        engine = _mk_engine(
            wal=WriteAheadLog(path, segment_records=6), checkpoint_every=8)
        _commit_rows(engine, manager_stream(60, 20))
        engine.close()
        full = StoreEngine.replay(path, from_checkpoint=False)
        before = WriteAheadLog.segment_paths(path)
        pruned = WriteAheadLog.prune(path)
        assert pruned and len(WriteAheadLog.segment_paths(path)) \
            == len(before) - len(pruned)
        replayed = StoreEngine.replay(path, verify=True)
        assert replayed.head_version().vid == full.head_version().vid
        assert replayed.state() == full.state()
        # Pruning again finds nothing new.
        assert WriteAheadLog.prune(path) == []

    def test_engine_prune_wal_and_archive(self, tmp_path):
        path = tmp_path / "seg"
        archive = tmp_path / "old"
        engine = _mk_engine(
            wal=WriteAheadLog(path, segment_records=4), checkpoint_every=6)
        _commit_rows(engine, manager_stream(60, 13))
        pruned = engine.prune_wal(archive=archive)
        assert pruned
        assert sorted(p.name for p in archive.iterdir()) \
            == sorted(p.name for p in pruned)
        engine.close()
        assert StoreEngine.replay(path).state() == engine.state()

    def test_multi_branch_checkpoint_replay(self, tmp_path):
        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal)
        rows = manager_stream(60, 10)
        _commit_rows(engine, rows[:3])
        engine.branch("dev")
        _commit_rows(engine, rows[3:5], branch="dev")
        _commit_rows(engine, rows[5:7])
        engine.branch("frozen")  # head coincides with main's
        engine.checkpoint()
        _commit_rows(engine, rows[7:9], branch="dev")
        _commit_rows(engine, rows[9:])
        engine.close()

        partial = StoreEngine.replay(wal)
        full = StoreEngine.replay(wal, from_checkpoint=False)
        assert partial.graph.branches() == full.graph.branches()
        for name in ("main", "dev", "frozen"):
            assert partial.state(branch=name) == full.state(branch=name)
        # Branches that shared a head at checkpoint time share one floor.
        assert partial.graph.head("frozen") is partial.graph.get(
            full.graph.head("frozen").vid)

    def test_branch_below_checkpoint_floor(self, tmp_path):
        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal)
        _commit_rows(engine, manager_stream(60, 4))
        engine.checkpoint()
        engine.branch("old", at="v1")  # anchored below the future floor
        engine.close()
        with pytest.raises(StoreError, match="below the checkpoint floor"):
            StoreEngine.replay(wal)
        full = StoreEngine.replay(wal, from_checkpoint=False)
        assert full.graph.branches()["old"] == "v1"

    def test_restored_engine_starts_fresh_wal_with_checkpoint(
            self, tmp_path):
        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal)
        rows = manager_stream(60, 6)
        _commit_rows(engine, rows[:4])
        engine.checkpoint()
        engine.close()

        fresh = tmp_path / "fresh.wal"
        restored = StoreEngine.replay(wal, wal=fresh)
        _commit_rows(restored, rows[4:])
        restored.close()
        first = WriteAheadLog.first_record(fresh)
        assert first["type"] == "checkpoint"
        again = StoreEngine.replay(fresh)
        assert again.head_version().vid == restored.head_version().vid
        assert again.state() == restored.state()

    def test_verified_replay_detects_tampered_checkpoint(self, tmp_path):
        import json

        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal)
        _commit_rows(engine, manager_stream(60, 3))
        engine.checkpoint()
        engine.close()
        lines = wal.read_text(encoding="utf-8").splitlines()
        record = json.loads(lines[-1])
        assert record["type"] == "checkpoint"
        doc = record["branches"]["main"]["document"]
        doc["relations"]["manager"].pop()  # drop a row from the document
        lines[-1] = json.dumps(record, sort_keys=True)
        wal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(StoreError, match="drift"):
            StoreEngine.replay(wal, from_checkpoint=False, verify=True)


# ----------------------------------------------------------------------
# version-graph GC and pins
# ----------------------------------------------------------------------
class TestGc:
    def test_gc_keep_window_and_stats(self):
        engine = _mk_engine()
        _commit_rows(engine, manager_stream(60, 8))
        stats = engine.gc(keep=3)
        assert stats == {"before": 9, "after": 3, "collected": 6,
                         "pinned": [], "floors": ["v6"]}
        assert sorted(engine.graph.versions) == ["v6", "v7", "v8"]
        assert engine.graph.get("v6").parent is None
        assert engine.graph.root.vid == "v6"
        with pytest.raises(StoreError):
            engine.gc(keep=0)

    def test_gc_preserves_pins_and_releases_collected_states(self):
        engine = _mk_engine()
        service = SessionService(engine)
        session = service.session()
        refs = {}
        for row in manager_stream(60, 8):
            version = session.commit(session.begin().insert("manager", row))
            refs[version.vid] = weakref.ref(version.state)
        del version
        reader = service.session()
        reader.pin("v3")

        stats = engine.gc(keep=1)
        assert stats["pinned"] == ["v3"]
        assert sorted(stats["floors"]) == ["v3", "v8"]
        assert sorted(engine.graph.versions) == ["v3", "v8"]
        pygc.collect()
        assert refs["v3"]() is not None, "pinned snapshot must survive"
        assert refs["v8"]() is not None
        for vid in ("v1", "v2", "v4", "v5", "v6", "v7"):
            assert refs[vid]() is None, \
                f"collected state {vid} is still resident"

        reader.release()
        engine.gc(keep=1)
        assert sorted(engine.graph.versions) == ["v8"]
        pygc.collect()
        assert refs["v3"]() is None, \
            "a released pin must make the snapshot collectable"

    def test_gc_after_commits_keeps_serving(self):
        engine = _mk_engine()
        rows = manager_stream(60, 10)
        _commit_rows(engine, rows[:6])
        engine.gc(keep=1)
        _commit_rows(engine, rows[6:])
        assert engine.head_version().vid == "v10"
        assert engine.audit().ok()
        expect = {r["pname"] for r in rows}
        got = {t["pname"] for t in engine.state().R("manager").tuples}
        assert expect <= got

    def test_pin_unpin_errors(self):
        engine = _mk_engine()
        versions = _commit_rows(engine, manager_stream(60, 4))
        with pytest.raises(StoreError, match="not pinned"):
            engine.unpin("v2")
        engine.pin("v2")
        engine.pin("v2")  # refcounted
        engine.unpin("v2")
        engine.gc(keep=1)
        assert "v2" in engine.graph.versions  # one pin still held
        engine.unpin("v2")
        engine.gc(keep=1)
        assert "v2" not in engine.graph.versions
        with pytest.raises(StoreError, match="not resident"):
            engine.pin(versions[1])  # collected version object

    def test_session_pin_context_manager(self):
        engine = _mk_engine()
        service = SessionService(engine)
        _commit_rows(engine, manager_stream(60, 5))
        with service.session() as session:
            pinned = session.pin("v2")
            assert [v.vid for v in session.pins()] == ["v2"]
            engine.gc(keep=1)
            assert session.read("manager", pinned) is not None
            with pytest.raises(StoreError, match="no pin"):
                session.release("v4")
        # Leaving the block released the pin.
        assert engine.pinned() == {}
        engine.gc(keep=1)
        assert "v2" not in engine.graph.versions

    def test_transaction_based_below_gc_floor_fails(self):
        engine = _mk_engine()
        rows = manager_stream(60, 6)
        _commit_rows(engine, rows[:1])
        stale = engine.begin()  # based at v1
        _commit_rows(engine, rows[1:5])
        engine.gc(keep=2)
        stale.insert("manager", rows[5])
        with pytest.raises(StoreError, match="not an ancestor"):
            engine.commit(stale)

    def test_gc_leaves_wal_replayable(self, tmp_path):
        wal = tmp_path / "store.wal"
        engine = _mk_engine(wal=wal)
        _commit_rows(engine, manager_stream(60, 6))
        engine.gc(keep=1)
        _commit_rows(engine, manager_stream(60, 8)[6:])
        engine.close()
        full = StoreEngine.replay(wal, from_checkpoint=False)
        assert len(full.graph) == 9  # GC never rewrites history on disk
        assert full.state() == engine.state()


# ----------------------------------------------------------------------
# slow lane: exhaustive crash injection, streams, and timing gates
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCrashInjection:
    def test_every_byte_offset_of_the_last_record(self, tmp_path):
        wal = tmp_path / "full.wal"
        engine = _mk_engine(n=30, wal=wal)
        _commit_rows(engine, manager_stream(30, 5))
        engine.close()
        data = wal.read_bytes()
        last_start = data.rstrip(b"\n").rfind(b"\n") + 1
        target = tmp_path / "cut.wal"
        for cut in range(last_start, len(data) + 1):
            target.write_bytes(data[:cut])
            complete = cut >= len(data) - 1  # only the newline missing
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", TornTailWarning)
                replayed = StoreEngine.replay(target)
            if complete:
                assert len(replayed.graph) == 6, f"cut at byte {cut}"
                assert replayed.head_version().vid == "v5"
            else:
                assert len(replayed.graph) == 5, f"cut at byte {cut}"
                assert replayed.head_version().vid == "v4"
            assert engine.state(replayed.head_version().vid) \
                == replayed.state()

    def test_torn_segment_boundary(self, tmp_path):
        """Tearing the last record of a segmented log behaves exactly
        like the single-file case — only the final segment's final line
        is ever forgiven."""
        path = tmp_path / "seg"
        engine = _mk_engine(n=30, wal=WriteAheadLog(path, segment_records=3))
        _commit_rows(engine, manager_stream(30, 7))
        engine.close()
        last = WriteAheadLog.segment_paths(path)[-1]
        data = last.read_bytes()
        last.write_bytes(data[:-9])
        with pytest.warns(TornTailWarning):
            replayed = StoreEngine.replay(path, from_checkpoint=False)
        assert replayed.head_version().vid == "v6"
        # A torn line in a non-final segment is never forgiven.
        first = WriteAheadLog.segment_paths(path)[0]
        first.write_bytes(first.read_bytes()[:-9])
        with pytest.raises(StoreError):
            StoreEngine.replay(path, from_checkpoint=False)


@pytest.mark.slow
class TestCheckpointStream:
    def test_rotated_checkpointed_replay_matches_full(self, tmp_path):
        """Differential over a long seeded stream: every version of the
        from-checkpoint graph state-equals its full-replay twin."""
        path = tmp_path / "seg"
        engine = _mk_engine(
            n=400,
            wal=WriteAheadLog(path, segment_records=25),
            checkpoint_every=40)
        _commit_rows(engine, manager_stream(400, 130))
        engine.close()
        partial = StoreEngine.replay(path)
        full = StoreEngine.replay(path, from_checkpoint=False)
        assert len(full.graph) == 131
        assert 1 < len(partial.graph) < len(full.graph)
        assert partial.graph.branches() == full.graph.branches()
        for vid in partial.graph.versions:
            assert partial.state(vid) == full.state(vid), vid
        pruned = WriteAheadLog.prune(path)
        assert pruned
        assert StoreEngine.replay(path, verify=True).state() == full.state()

    def test_replay_from_checkpoint_speedup(self, tmp_path):
        """The acceptance gate: at 500+ commits, replay from the newest
        checkpoint is >= 5x faster than replay from v0."""
        import time

        path = tmp_path / "seg"
        engine = _mk_engine(
            n=60,
            wal=WriteAheadLog(path, segment_records=1000),
            checkpoint_every=100)
        rows = manager_stream(60, 40)
        session = SessionService(engine).session()
        for i in range(260):  # insert/delete churn: 520 commits
            row = rows[i % len(rows)]
            session.commit(session.begin().insert("manager", row))
            session.commit(session.begin().delete("manager", row, False))
        engine.close()

        def best_of(k, fn):
            return min(_timed(fn) for _ in range(k))

        def _timed(fn):
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0

        partial = StoreEngine.replay(path)
        full = StoreEngine.replay(path, from_checkpoint=False)
        assert full.graph.seq == 520
        assert partial.state() == full.state()
        t_full = best_of(
            3, lambda: StoreEngine.replay(path, from_checkpoint=False))
        t_partial = best_of(3, lambda: StoreEngine.replay(path))
        speedup = t_full / t_partial
        assert speedup >= 5.0, (
            f"replay-from-checkpoint speedup {speedup:.1f}x "
            f"(full {t_full * 1e3:.1f} ms, "
            f"checkpoint {t_partial * 1e3:.1f} ms)")


@pytest.mark.slow
class TestGcUnderStream:
    def test_gc_bounds_residency_under_eight_writers(self):
        engine = _mk_engine(n=400)
        service = SessionService(engine)
        rows = manager_stream(400, 240)
        shards = disjoint_commit_specs(rows, 8)
        errors = []

        def worker(shard):
            session = service.session()
            for spec in shard:
                for _ in range(50):
                    try:
                        session.run(spec)
                        break
                    except StoreError:
                        # The txn's base fell below the GC floor while
                        # this writer was descheduled; rebase by
                        # retrying from the fresh head.
                        continue
                else:
                    errors.append(spec)

        pinned = service.session()
        pinned.pin()  # v0: a long-lived reader the stream must respect
        threads = [threading.Thread(target=worker, args=(shard,))
                   for shard in shards]
        for t in threads:
            t.start()
        bounds = []
        while any(t.is_alive() for t in threads):
            stats = engine.gc(keep=16)
            bounds.append(stats["after"])
            assert stats["after"] <= 16 + len(stats["pinned"])
        for t in threads:
            t.join()
        assert not errors, f"{len(errors)} commits never landed"

        final = engine.gc(keep=4)
        assert final["after"] <= 4 + 1
        assert "v0" in engine.graph.versions  # the pin held
        got = {t["pname"] for t in engine.state().R("manager").tuples}
        assert {r["pname"] for r in rows} <= got
        assert engine.audit().ok()
