"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro import cli, io
from repro.core.employee import employee_constraints, employee_extension


@pytest.fixture
def document(tmp_path):
    db = employee_extension()
    path = tmp_path / "employee.json"
    io.save(path, db, employee_constraints(db.schema))
    return str(path)


@pytest.fixture
def broken_document(tmp_path):
    db = employee_extension()
    broken = db.insert("manager", {
        "name": "eva", "age": 47, "depname": "admin", "budget": 100,
    }, propagate=False)
    path = tmp_path / "broken.json"
    io.save(path, broken, employee_constraints(broken.schema))
    return str(path)


class TestInspect:
    def test_renders_tables(self, document, capsys):
        assert cli.main(["inspect", document]) == 0
        out = capsys.readouterr().out
        assert "A = {age, budget, depname, location, name}" in out
        assert "containment: ok" in out


class TestCheck:
    def test_clean_state(self, document, capsys):
        assert cli.main(["check", document]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, broken_document, capsys):
        assert cli.main(["check", broken_document]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS FOUND" in out
        assert "Containment" in out


class TestTopology:
    def test_reports_essential_types(self, document, capsys):
        assert cli.main(["topology", document]) == 0
        out = capsys.readouterr().out
        assert "S_person" in out
        assert "essential entity types: "\
            "['department', 'employee', 'manager', 'person']" in out
        assert "['worksfor']" in out


class TestFD:
    def test_closure_listing(self, document, capsys):
        assert cli.main(["fd", document, "--closure"]) == 0
        out = capsys.readouterr().out
        assert "fd(employee, department, worksfor)" in out
        assert "non-trivial closure" in out

    def test_violated_dependency_exit_code(self, tmp_path, capsys):
        db = employee_extension()
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        path = tmp_path / "fdbroken.json"
        io.save(path, broken, employee_constraints(broken.schema))
        assert cli.main(["fd", str(path)]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestExample:
    def test_writes_document(self, tmp_path, capsys):
        out_path = tmp_path / "emp.json"
        assert cli.main(["example", "employee", str(out_path)]) == 0
        db, constraints = io.load(out_path)
        assert db.is_consistent()
        assert constraints.holds(db)

    def test_unknown_example(self, tmp_path):
        assert cli.main(["example", "nothing", str(tmp_path / "x.json")]) == 2
