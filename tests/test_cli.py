"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro import cli, io
from repro.core.employee import employee_constraints, employee_extension


@pytest.fixture
def document(tmp_path):
    db = employee_extension()
    path = tmp_path / "employee.json"
    io.save(path, db, employee_constraints(db.schema))
    return str(path)


@pytest.fixture
def broken_document(tmp_path):
    db = employee_extension()
    broken = db.insert("manager", {
        "name": "eva", "age": 47, "depname": "admin", "budget": 100,
    }, propagate=False)
    path = tmp_path / "broken.json"
    io.save(path, broken, employee_constraints(broken.schema))
    return str(path)


class TestInspect:
    def test_renders_tables(self, document, capsys):
        assert cli.main(["inspect", document]) == 0
        out = capsys.readouterr().out
        assert "A = {age, budget, depname, location, name}" in out
        assert "containment: ok" in out


class TestCheck:
    def test_clean_state(self, document, capsys):
        assert cli.main(["check", document]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, broken_document, capsys):
        assert cli.main(["check", broken_document]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS FOUND" in out
        assert "Containment" in out


class TestTopology:
    def test_reports_essential_types(self, document, capsys):
        assert cli.main(["topology", document]) == 0
        out = capsys.readouterr().out
        assert "S_person" in out
        assert "essential entity types: "\
            "['department', 'employee', 'manager', 'person']" in out
        assert "['worksfor']" in out


class TestFD:
    def test_closure_listing(self, document, capsys):
        assert cli.main(["fd", document, "--closure"]) == 0
        out = capsys.readouterr().out
        assert "fd(employee, department, worksfor)" in out
        assert "non-trivial closure" in out

    def test_violated_dependency_exit_code(self, tmp_path, capsys):
        db = employee_extension()
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        path = tmp_path / "fdbroken.json"
        io.save(path, broken, employee_constraints(broken.schema))
        assert cli.main(["fd", str(path)]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestExample:
    def test_writes_document(self, tmp_path, capsys):
        out_path = tmp_path / "emp.json"
        assert cli.main(["example", "employee", str(out_path)]) == 0
        db, constraints = io.load(out_path)
        assert db.is_consistent()
        assert constraints.holds(db)

    def test_unknown_example(self, tmp_path):
        assert cli.main(["example", "nothing", str(tmp_path / "x.json")]) == 2


class TestCheckJson:
    def test_clean_state_json(self, document, capsys):
        import json

        assert cli.main(["check", document, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {"ok": True, "findings": [], "constraints": {}}

    def test_violations_json_carry_witnesses(self, broken_document, capsys):
        import json

        assert cli.main(["check", broken_document, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        axioms = {f["axiom"] for f in data["findings"]}
        assert "Containment Condition" in axioms
        assert any(f["witnesses"] for f in data["findings"])


class TestServeLogReplay:
    def test_serve_emits_summary_and_wal(self, document, tmp_path, capsys):
        import json

        wal = tmp_path / "serve.wal"
        assert cli.main(["serve", document, "--txns", "30", "--threads", "2",
                         "--wal", str(wal), "--seed", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["audit"]["ok"] is True
        assert data["committed"] + data["rejected"] + data["conflicts"] \
            + data["noop"] == 30
        assert data["versions"] == data["committed"] + 1
        assert wal.exists()

    def test_log_lists_history(self, document, tmp_path, capsys):
        wal = tmp_path / "serve.wal"
        assert cli.main(["serve", document, "--txns", "12", "--threads", "1",
                         "--wal", str(wal), "--seed", "3"]) == 0
        capsys.readouterr()
        assert cli.main(["log", str(wal)]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("v0  snapshot")
        assert any("<- v0" in line for line in out)

    def test_log_json_records(self, document, tmp_path, capsys):
        import json

        wal = tmp_path / "serve.wal"
        cli.main(["serve", document, "--txns", "6", "--threads", "1",
                  "--wal", str(wal), "--seed", "3"])
        capsys.readouterr()
        assert cli.main(["log", str(wal), "--json"]) == 0
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert records[0]["type"] == "snapshot"
        assert all(r["type"] in ("snapshot", "commit", "branch")
                   for r in records)

    def test_replay_verifies_and_writes_head(self, document, tmp_path, capsys):
        import json

        from repro import io as _io

        wal = tmp_path / "serve.wal"
        out_doc = tmp_path / "head.json"
        cli.main(["serve", document, "--txns", "20", "--threads", "2",
                  "--wal", str(wal), "--seed", "3"])
        capsys.readouterr()
        assert cli.main(["replay", str(wal), "--verify",
                         "--out", str(out_doc), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["audit"]["ok"] is True
        assert data["verified"] is True
        db, constraints = _io.load(out_doc)
        assert db.is_consistent()

    def test_serve_modes_agree_on_traffic(self, document, tmp_path, capsys):
        import json

        outcomes = {}
        for mode in ("delta", "audit"):
            assert cli.main(["serve", document, "--txns", "25",
                             "--threads", "1", "--mode", mode,
                             "--seed", "5", "--json"]) == 0
            data = json.loads(capsys.readouterr().out)
            outcomes[mode] = (data["committed"], data["rejected"],
                              data["noop"])
        assert outcomes["delta"] == outcomes["audit"]


class TestCheckpointGc:
    """The checkpoint / gc / replay-from-checkpoint surface of the CLI."""

    @pytest.fixture
    def segmented_wal(self, document, tmp_path, capsys):
        wal = tmp_path / "wal"
        assert cli.main(["serve", document, "--txns", "40", "--threads", "1",
                         "--wal", str(wal), "--seed", "3",
                         "--segment-records", "8",
                         "--checkpoint-every", "10"]) == 0
        capsys.readouterr()
        return wal

    def test_serve_rotates_and_checkpoints(self, segmented_wal, capsys):
        import json

        from repro.store import WriteAheadLog

        segments = WriteAheadLog.segment_paths(segmented_wal)
        assert len(segments) > 1
        assert cli.main(["log", str(segmented_wal), "--json"]) == 0
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        kinds = {r["type"] for r in records}
        assert "checkpoint" in kinds

    def test_log_renders_checkpoints(self, segmented_wal, capsys):
        assert cli.main(["log", str(segmented_wal)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint  seq" in out
        assert "heads: main@v" in out

    def test_replay_from_checkpoint_matches_full(self, segmented_wal,
                                                 capsys):
        import json

        assert cli.main(["replay", str(segmented_wal), "--json"]) == 0
        partial = json.loads(capsys.readouterr().out)
        assert cli.main(["replay", str(segmented_wal), "--full",
                         "--json"]) == 0
        full = json.loads(capsys.readouterr().out)
        assert partial["branches"] == full["branches"]
        assert partial["versions"] < full["versions"]
        assert partial["audit"]["ok"] and full["audit"]["ok"]

    def test_checkpoint_command_appends_record(self, document, tmp_path,
                                               capsys):
        import json

        wal = tmp_path / "single.wal"
        cli.main(["serve", document, "--txns", "12", "--threads", "1",
                  "--wal", str(wal), "--seed", "3"])
        capsys.readouterr()
        assert cli.main(["checkpoint", str(wal), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["branches"]["main"].startswith("v")
        assert cli.main(["log", str(wal), "--json"]) == 0
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert records[-1]["type"] == "checkpoint"
        assert records[-1]["seq"] == summary["seq"]
        # And replay now starts from it.
        assert cli.main(["replay", str(wal), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["versions"] == 1
        assert data["audit"]["ok"] is True

    def test_gc_prunes_checkpointed_segments(self, segmented_wal, capsys):
        import json

        from repro.store import WriteAheadLog

        before = WriteAheadLog.segment_paths(segmented_wal)
        assert cli.main(["gc", str(segmented_wal), "--dry-run",
                         "--json"]) == 0
        dry = json.loads(capsys.readouterr().out)
        assert dry["dry_run"] is True
        assert dry["pruned"]
        assert WriteAheadLog.segment_paths(segmented_wal) == before

        archive = segmented_wal.parent / "archive"
        assert cli.main(["gc", str(segmented_wal),
                         "--archive", str(archive), "--json"]) == 0
        done = json.loads(capsys.readouterr().out)
        assert done["pruned"] == dry["pruned"]
        remaining = WriteAheadLog.segment_paths(segmented_wal)
        assert [str(p) for p in remaining] == done["remaining"]
        assert len(remaining) < len(before)
        archived = sorted(p.name for p in archive.iterdir())
        assert archived == sorted(
            p.rsplit("/", 1)[-1] for p in done["pruned"])
        # The pruned log still replays to the same head.
        assert cli.main(["replay", str(segmented_wal), "--verify",
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["branches"] == done["branches"]
        assert data["audit"]["ok"] is True

    def test_gc_without_checkpoint_is_noop(self, document, tmp_path,
                                           capsys):
        wal = tmp_path / "plain.wal"
        cli.main(["serve", document, "--txns", "8", "--threads", "1",
                  "--wal", str(wal), "--seed", "3"])
        capsys.readouterr()
        assert cli.main(["gc", str(wal)]) == 0
        assert "nothing to prune" in capsys.readouterr().out


@pytest.fixture
def committed_wal(tmp_path):
    """A closed primary WAL with one committed write."""
    from repro.store import SessionService, StoreEngine
    from repro.workloads import manager_stream, serving_state

    schema, db, constraints = serving_state(8)
    wal = tmp_path / "primary.jsonl"
    engine = StoreEngine(db, constraints, wal=wal)
    session = SessionService(engine).session()
    session.run([("insert", "manager", manager_stream(8, 1)[0])])
    engine.close()
    return wal


class TestReplicaLagBound:
    def test_within_bound_exits_zero(self, committed_wal, capsys):
        assert cli.main(["replica", str(committed_wal), "--once",
                         "--max-lag-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "lag_ok: True" in out
        assert "max_lag_bytes: 0" in out

    def test_over_bound_exits_nonzero(self, committed_wal, capsys):
        with open(committed_wal, "ab") as f:
            f.write(b'{"type": "commit", "ver')  # a torn, growing tail
        assert cli.main(["replica", str(committed_wal), "--once",
                         "--timeout", "0.3",
                         "--max-lag-bytes", "0"]) == 1
        out = capsys.readouterr().out
        assert "lag_ok: False" in out

    def test_no_bound_keeps_the_old_contract(self, committed_wal,
                                             capsys):
        with open(committed_wal, "ab") as f:
            f.write(b'{"type": "commit", "ver')
        assert cli.main(["replica", str(committed_wal), "--once",
                         "--timeout", "0.3"]) == 0
        assert "max_lag_bytes" not in capsys.readouterr().out


class TestSupervise:
    def test_once_against_a_live_primary(self, committed_wal, capsys):
        import json as _json

        from repro.server import ReplicaEngine, StoreServer

        replica_like = ReplicaEngine(committed_wal)
        replica_like.sync()
        with StoreServer(replica_like, sync_interval=0) as server:
            host, port = server.address
            assert cli.main(["supervise", str(committed_wal),
                             "--id", "r1",
                             "--primary", f"{host}:{port}",
                             "--once", "--json"]) == 0
        summary = _json.loads(capsys.readouterr().out)
        assert summary["role"] == "follower"
        assert summary["replica_id"] == "r1"
        assert summary["primary_state"] == "alive"
        assert summary["ticks"] == 1

    def test_max_ticks_bounds_a_dead_primary_loop(self, committed_wal,
                                                  capsys):
        assert cli.main(["supervise", str(committed_wal),
                         "--id", "r1",
                         "--primary", "127.0.0.1:1",
                         "--interval", "0.01",
                         "--max-ticks", "2"]) == 0
        out = capsys.readouterr().out
        assert "role: follower" in out
        assert "primary_state: suspect" in out
        assert "ticks: 2" in out

    def test_malformed_peer_spec_is_rejected(self, committed_wal):
        with pytest.raises(SystemExit, match="ID=HOST:PORT"):
            cli.main(["supervise", str(committed_wal), "--id", "r1",
                      "--primary", "127.0.0.1:1",
                      "--peer", "oops", "--once"])
