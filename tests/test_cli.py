"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro import cli, io
from repro.core.employee import employee_constraints, employee_extension


@pytest.fixture
def document(tmp_path):
    db = employee_extension()
    path = tmp_path / "employee.json"
    io.save(path, db, employee_constraints(db.schema))
    return str(path)


@pytest.fixture
def broken_document(tmp_path):
    db = employee_extension()
    broken = db.insert("manager", {
        "name": "eva", "age": 47, "depname": "admin", "budget": 100,
    }, propagate=False)
    path = tmp_path / "broken.json"
    io.save(path, broken, employee_constraints(broken.schema))
    return str(path)


class TestInspect:
    def test_renders_tables(self, document, capsys):
        assert cli.main(["inspect", document]) == 0
        out = capsys.readouterr().out
        assert "A = {age, budget, depname, location, name}" in out
        assert "containment: ok" in out


class TestCheck:
    def test_clean_state(self, document, capsys):
        assert cli.main(["check", document]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, broken_document, capsys):
        assert cli.main(["check", broken_document]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS FOUND" in out
        assert "Containment" in out


class TestTopology:
    def test_reports_essential_types(self, document, capsys):
        assert cli.main(["topology", document]) == 0
        out = capsys.readouterr().out
        assert "S_person" in out
        assert "essential entity types: "\
            "['department', 'employee', 'manager', 'person']" in out
        assert "['worksfor']" in out


class TestFD:
    def test_closure_listing(self, document, capsys):
        assert cli.main(["fd", document, "--closure"]) == 0
        out = capsys.readouterr().out
        assert "fd(employee, department, worksfor)" in out
        assert "non-trivial closure" in out

    def test_violated_dependency_exit_code(self, tmp_path, capsys):
        db = employee_extension()
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        path = tmp_path / "fdbroken.json"
        io.save(path, broken, employee_constraints(broken.schema))
        assert cli.main(["fd", str(path)]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestExample:
    def test_writes_document(self, tmp_path, capsys):
        out_path = tmp_path / "emp.json"
        assert cli.main(["example", "employee", str(out_path)]) == 0
        db, constraints = io.load(out_path)
        assert db.is_consistent()
        assert constraints.holds(db)

    def test_unknown_example(self, tmp_path):
        assert cli.main(["example", "nothing", str(tmp_path / "x.json")]) == 2


class TestCheckJson:
    def test_clean_state_json(self, document, capsys):
        import json

        assert cli.main(["check", document, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {"ok": True, "findings": [], "constraints": {}}

    def test_violations_json_carry_witnesses(self, broken_document, capsys):
        import json

        assert cli.main(["check", broken_document, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        axioms = {f["axiom"] for f in data["findings"]}
        assert "Containment Condition" in axioms
        assert any(f["witnesses"] for f in data["findings"])


class TestServeLogReplay:
    def test_serve_emits_summary_and_wal(self, document, tmp_path, capsys):
        import json

        wal = tmp_path / "serve.wal"
        assert cli.main(["serve", document, "--txns", "30", "--threads", "2",
                         "--wal", str(wal), "--seed", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["audit"]["ok"] is True
        assert data["committed"] + data["rejected"] + data["conflicts"] \
            + data["noop"] == 30
        assert data["versions"] == data["committed"] + 1
        assert wal.exists()

    def test_log_lists_history(self, document, tmp_path, capsys):
        wal = tmp_path / "serve.wal"
        assert cli.main(["serve", document, "--txns", "12", "--threads", "1",
                         "--wal", str(wal), "--seed", "3"]) == 0
        capsys.readouterr()
        assert cli.main(["log", str(wal)]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("v0  snapshot")
        assert any("<- v0" in line for line in out)

    def test_log_json_records(self, document, tmp_path, capsys):
        import json

        wal = tmp_path / "serve.wal"
        cli.main(["serve", document, "--txns", "6", "--threads", "1",
                  "--wal", str(wal), "--seed", "3"])
        capsys.readouterr()
        assert cli.main(["log", str(wal), "--json"]) == 0
        records = [json.loads(line)
                   for line in capsys.readouterr().out.splitlines()]
        assert records[0]["type"] == "snapshot"
        assert all(r["type"] in ("snapshot", "commit", "branch")
                   for r in records)

    def test_replay_verifies_and_writes_head(self, document, tmp_path, capsys):
        import json

        from repro import io as _io

        wal = tmp_path / "serve.wal"
        out_doc = tmp_path / "head.json"
        cli.main(["serve", document, "--txns", "20", "--threads", "2",
                  "--wal", str(wal), "--seed", "3"])
        capsys.readouterr()
        assert cli.main(["replay", str(wal), "--verify",
                         "--out", str(out_doc), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["audit"]["ok"] is True
        assert data["verified"] is True
        db, constraints = _io.load(out_doc)
        assert db.is_consistent()

    def test_serve_modes_agree_on_traffic(self, document, tmp_path, capsys):
        import json

        outcomes = {}
        for mode in ("delta", "audit"):
            assert cli.main(["serve", document, "--txns", "25",
                             "--threads", "1", "--mode", mode,
                             "--seed", "5", "--json"]) == 0
            data = json.loads(capsys.readouterr().out)
            outcomes[mode] = (data["committed"], data["rejected"],
                              data["noop"])
        assert outcomes["delta"] == outcomes["audit"]
