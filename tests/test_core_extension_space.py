"""Unit tests for the instance-level extension topology (section 4)."""

import pytest

from repro.core.extension_space import (
    extension_space,
    fibers,
    instance_generalisations,
    instance_minimal_open,
    instance_points,
    intension_extension_report,
    type_projection,
)
from repro.errors import ContainmentError
from repro.relational import Tuple


class TestPoints:
    def test_one_point_per_instance(self, db):
        points = instance_points(db)
        assert len(points) == db.total_instances()

    def test_generalisations_of_manager_instance(self, db):
        t = next(iter(db.R("manager").tuples))
        ups = instance_generalisations(db, ("manager", t))
        names = {name for name, _ in ups}
        assert names == {"manager", "employee", "person"}

    def test_requires_containment(self, db):
        broken = db.insert("manager", {
            "name": "eva", "age": 47, "depname": "admin", "budget": 100,
        }, propagate=False)
        t = Tuple({"name": "eva", "age": 47, "depname": "admin", "budget": 100})
        with pytest.raises(ContainmentError):
            instance_generalisations(broken, ("manager", t))


class TestSpace:
    def test_space_well_formed(self, db):
        space = extension_space(db)
        assert len(space.points) == db.total_instances()

    def test_minimal_open_mirrors_S(self, db):
        """The S-set of ann-the-person contains ann's employee and manager
        instances (her data-level specialisations)."""
        ann = Tuple({"name": "ann", "age": 31})
        open_set = instance_minimal_open(db, ("person", ann))
        names = {name for name, _ in open_set}
        assert names == {"person", "employee", "manager", "worksfor"}

    def test_lonely_person_has_singleton_open(self, db):
        dee = Tuple({"name": "dee", "age": 53})
        open_set = instance_minimal_open(db, ("person", dee))
        assert open_set == frozenset({("person", dee)})


class TestProjection:
    def test_continuous(self, db):
        assert type_projection(db).is_continuous()

    def test_not_open_because_of_dee(self, db):
        """dee is a person with no employee counterpart: her minimal open
        projects to {person}, which is not open in the intension — the
        projection is continuous but not open."""
        assert not type_projection(db).is_open_map()

    def test_open_after_removing_dee(self, db):
        """Dropping the lonely instance makes every fiber 'full' along the
        populated ISA edges ... note worksfor/manager asymmetries may still
        break openness; check the report fields instead."""
        report = intension_extension_report(db)
        assert report["continuous"]
        assert report["s_compatible"]

    def test_fibers_are_relations(self, db):
        fib = fibers(db)
        for e in db.schema:
            assert len(fib[e.name]) == len(db.R(e))

    def test_report_counts(self, db):
        report = intension_extension_report(db)
        assert report["points"] == db.total_instances()
        assert report["fiber_sizes"]["person"] == 4


class TestRandomStates:
    def test_projection_continuous_on_generated_states(self):
        import random

        from repro.workloads import random_extension, random_schema

        for seed in range(5):
            rng = random.Random(seed)
            schema = random_schema(rng, n_attrs=6, n_types=5, shape="tree")
            state = random_extension(rng, schema, rows_per_leaf=2)
            assert type_projection(state).is_continuous(), seed

    def test_instance_order_antisymmetric(self, db):
        """Entity Type Axiom lifts to instances: mutual specialisation
        implies identity."""
        space = extension_space(db)
        for p in space.points:
            for q in space.minimal_open(p):
                if p in space.minimal_open(q):
                    assert p == q
