"""Replica differential suite: a WAL-tailing replica converges to the
exact graph a full replay produces.

The acceptance property: a :class:`ReplicaEngine` attached to a live
primary's write-ahead log — syncing *while* the primary commits, across
checkpoint rotations, and through an injected torn tail at the segment
boundary — ends byte-identical to ``StoreEngine.replay`` of the same
log: same version ids in the same order, same parent edges, same branch
heads, same per-version states.  The replica and replay share one
record-application path (``apply_wal_record``), and this suite is what
holds that refactor to its contract.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import CommitRejected, StoreError
from repro.server import ReplicaEngine
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads.sessions import manager_stream, serving_state

from generators import random_database_states
from repro.workloads import random_txn_specs

SEEDS = range(25)  # 25 seeds x ~8-16 versions each => 200+ state checks


def _assert_same_graph(left, right, context=""):
    """Version-for-version identity: ids, order, parent edges, branch
    heads, and the full state documents."""
    lefts = list(left.log())
    rights = list(right.log())
    assert [v.vid for v in lefts] == [v.vid for v in rights], context
    for a, b in zip(lefts, rights):
        assert a.state == b.state, (context, a.vid)
        assert a.branch == b.branch, (context, a.vid)
        assert (a.parent.vid if a.parent else None) == \
            (b.parent.vid if b.parent else None), (context, a.vid)
    assert left.branches() == right.branches(), context
    assert left.seq == right.seq, context


def _drive(rng, engine, db, n_txns, replica=None, sync_odds=0.5):
    """Commit seeded random traffic, optionally interleaving replica
    syncs mid-stream (the live-tail part of the differential)."""
    session = SessionService(engine).session()
    for ops in random_txn_specs(rng, db, n_txns):
        try:
            session.run(ops)
        except CommitRejected:
            pass  # rejected traffic is traffic: the WAL never sees it
        if replica is not None and rng.random() < sync_odds:
            replica.sync()
    return session


# ----------------------------------------------------------------------
# the live-tail differential
# ----------------------------------------------------------------------
class TestLiveTailDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_live_tail_converges_to_full_replay(self, seed, tmp_path):
        """A replica born with the log and syncing *during* the
        primary's write stream — across segment rotations and
        checkpoints — equals both the primary's graph and a full
        (from-v0) replay of the finished log."""
        rng = random.Random(seed)
        (schema, db), *_ = random_database_states(rng, rows_per_leaf=2)
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, segment_records=6)
        engine = StoreEngine(db, (), wal=wal, checkpoint_every=5)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.sync()  # bootstrap from the snapshot record
        assert replica.ready

        _drive(rng, engine, db, 14, replica=replica)
        if len(engine.graph) > 3 and rng.random() < 0.5:
            engine.branch("side", at="v1")
            side = SessionService(engine).session("side")
            try:
                side.run(random_txn_specs(rng, db, 1)[0])
            except CommitRejected:
                pass
        engine.close()
        assert len(engine.graph) >= 2, "seed produced no traffic"

        replica.catch_up()
        assert replica.behind_bytes() == 0
        full = StoreEngine.replay(wal_dir, from_checkpoint=False)
        _assert_same_graph(replica.graph, full.graph, f"seed {seed}")
        _assert_same_graph(replica.graph, engine.graph, f"seed {seed}")

    @pytest.mark.parametrize("seed", range(5))
    def test_single_file_wal_live_tail(self, seed, tmp_path):
        """The same convergence over an unsegmented single-file log
        (checkpoints inline, no rotation)."""
        rng = random.Random(100 + seed)
        (schema, db), *_ = random_database_states(rng, rows_per_leaf=2)
        path = tmp_path / "store.wal"
        engine = StoreEngine(db, (), wal=path, checkpoint_every=4)
        replica = ReplicaEngine(path, from_checkpoint=False)
        _drive(rng, engine, db, 10, replica=replica)
        engine.close()
        replica.catch_up()
        full = StoreEngine.replay(path, from_checkpoint=False)
        _assert_same_graph(replica.graph, full.graph)
        _assert_same_graph(replica.graph, engine.graph)

    def test_verifying_replica_re_gates_commits(self, tmp_path):
        """``verify=True`` re-runs every followed commit through the
        replica's own axiom gate — and still converges identically when
        the primary was honest."""
        schema, db, constraints = serving_state(8)
        wal_dir = tmp_path / "wal"
        engine = StoreEngine(db, constraints,
                             wal=WriteAheadLog(wal_dir, segment_records=4),
                             checkpoint_every=3)
        session = SessionService(engine).session()
        for row in manager_stream(8, 4):
            session.run([("insert", "manager", row)])
        engine.close()
        replica = ReplicaEngine(wal_dir, from_checkpoint=False,
                                verify=True)
        replica.catch_up()
        _assert_same_graph(replica.graph, engine.graph)


# ----------------------------------------------------------------------
# checkpoint bootstrap
# ----------------------------------------------------------------------
class TestCheckpointBootstrap:
    @pytest.mark.parametrize("seed", range(8))
    def test_bootstrap_matches_replay_from_checkpoint(self, seed,
                                                      tmp_path):
        """The default (checkpoint) bootstrap equals
        ``replay(from_checkpoint=True)``: pre-checkpoint versions are
        absent from both, everything after is identical."""
        rng = random.Random(300 + seed)
        (schema, db), *_ = random_database_states(rng, rows_per_leaf=2)
        wal_dir = tmp_path / "wal"
        engine = StoreEngine(db, (),
                             wal=WriteAheadLog(wal_dir, segment_records=5),
                             checkpoint_every=4)
        _drive(rng, engine, db, 12)
        engine.close()

        replica = ReplicaEngine(wal_dir)  # from_checkpoint=True default
        replica.catch_up()
        ck = StoreEngine.replay(wal_dir, from_checkpoint=True)
        _assert_same_graph(replica.graph, ck.graph, f"seed {seed}")
        # and the head it serves is the primary's head
        assert replica.head_version().vid == engine.head_version().vid

    def test_bootstrap_from_single_file_inline_checkpoint(self, tmp_path):
        schema, db, constraints = serving_state(8)
        path = tmp_path / "store.wal"
        engine = StoreEngine(db, constraints, wal=path,
                             checkpoint_every=2)
        session = SessionService(engine).session()
        for row in manager_stream(8, 5):
            session.run([("insert", "manager", row)])
        engine.close()
        replica = ReplicaEngine(path)
        replica.catch_up()
        ck = StoreEngine.replay(path, from_checkpoint=True)
        _assert_same_graph(replica.graph, ck.graph)


# ----------------------------------------------------------------------
# the crash-recovery contract on the read side
# ----------------------------------------------------------------------
class TestTornTail:
    def _build(self, tmp_path, n_txns=12, segment_records=5):
        rng = random.Random(0x7042)
        (schema, db), *_ = random_database_states(rng, rows_per_leaf=2)
        wal_dir = tmp_path / "wal"
        engine = StoreEngine(
            db, (), wal=WriteAheadLog(wal_dir, segment_records=segment_records),
            checkpoint_every=4)
        _drive(rng, engine, db, n_txns)
        engine.close()
        return wal_dir, engine

    def test_torn_tail_at_segment_boundary(self, tmp_path):
        """A crash mid-append at the end of the newest segment: the
        replica *waits* (no error, no partial application), repair
        truncates the torn line, and the replica then converges to the
        full replay of the repaired log."""
        wal_dir, engine = self._build(tmp_path)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.catch_up()
        assert replica.behind_bytes() == 0

        # Crash injection: a record missing its trailing newline at the
        # tail of the final segment — exactly what a torn append leaves.
        last = WriteAheadLog.segment_paths(wal_dir)[-1]
        torn = b'{"type": "commit", "version": "v999", "parent"'
        with last.open("ab") as fh:
            fh.write(torn)

        assert replica.sync() == 0          # waits; applies nothing
        assert replica.behind_bytes() == len(torn)
        assert replica.sync() == 0          # still waiting, still calm

        dropped = WriteAheadLog.repair(wal_dir)  # crash recovery
        assert dropped == len(torn)
        assert replica.sync() == 0          # offset clamps to the truncation
        assert replica.behind_bytes() == 0

        full = StoreEngine.replay(wal_dir, from_checkpoint=False)
        _assert_same_graph(replica.graph, full.graph)
        _assert_same_graph(replica.graph, engine.graph)

    def test_torn_tail_mid_stream_then_completed(self, tmp_path):
        """The benign race: the replica polls while the primary is
        half-way through an append.  The partial line is left alone and
        applied whole once its newline lands.  Staged by peeling the
        log's real final record off and re-appending it in two halves
        around the replica's polls."""
        wal_dir, engine = self._build(tmp_path)
        last = WriteAheadLog.segment_paths(wal_dir)[-1]
        lines = last.read_bytes().splitlines(keepends=True)
        final = lines[-1]
        last.write_bytes(b"".join(lines[:-1]))

        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        before = replica.catch_up()
        assert replica.behind_bytes() == 0

        split = max(1, len(final) // 2)
        with last.open("ab") as fh:
            fh.write(final[:split])
        assert replica.sync() == 0           # mid-append: wait
        assert replica.behind_bytes() == split
        with last.open("ab") as fh:
            fh.write(final[split:])
        assert replica.sync() == 1           # the whole record, once
        assert replica._applied_records == before + 1
        _assert_same_graph(replica.graph, engine.graph)

    def test_corrupt_mid_log_line_raises(self, tmp_path):
        """A newline-*terminated* unparsable line is corruption, not a
        torn tail — the replica must refuse it loudly."""
        wal_dir, _ = self._build(tmp_path)
        last = WriteAheadLog.segment_paths(wal_dir)[-1]
        with last.open("ab") as fh:
            fh.write(b'{"type": "commit", "version"\n')
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        with pytest.raises(StoreError, match="corrupt"):
            replica.catch_up()

    def test_pruned_under_cursor_resyncs_from_checkpoint(self, tmp_path):
        """GC pruning segments the cursor still points into is a
        detectable StoreError; ``resync`` re-bootstraps from the newest
        checkpoint and converges with ``replay(from_checkpoint=True)``."""
        wal_dir, engine = self._build(tmp_path, n_txns=16,
                                      segment_records=4)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.sync(max_records=2)  # cursor parked in the oldest segment
        assert replica.ready
        pruned = WriteAheadLog.prune(wal_dir)
        if not pruned:
            pytest.skip("seeded traffic produced no prunable segment")
        with pytest.raises(StoreError, match="resynchronise"):
            replica.catch_up()
        replica.resync()
        replica.catch_up()
        ck = StoreEngine.replay(wal_dir, from_checkpoint=True)
        _assert_same_graph(replica.graph, ck.graph)


# ----------------------------------------------------------------------
# the staleness report
# ----------------------------------------------------------------------
class TestStalenessReport:
    def test_status_and_lag_shapes(self, tmp_path):
        schema, db, constraints = serving_state(8)
        wal_dir = tmp_path / "wal"
        engine = StoreEngine(db, constraints,
                             wal=WriteAheadLog(wal_dir, segment_records=4),
                             checkpoint_every=3)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)

        status = replica.status()
        assert status["role"] == "replica"
        assert status["ready"] is False
        assert "versions" not in status

        session = SessionService(engine).session()
        rows = manager_stream(8, 4)
        session.run([("insert", "manager", rows[0])])
        replica.catch_up()
        status = replica.status()
        assert status["ready"] is True
        assert status["behind_bytes"] == 0
        assert status["applied_records"] >= 2
        assert status["branches"] == engine.graph.branches()
        assert replica.lag()["current"] is True

        # fresh primary commits show up as measurable lag ...
        for row in rows[1:]:
            session.run([("insert", "manager", row)])
        assert replica.behind_bytes() > 0
        assert replica.lag()["current"] is False
        # ... and vanish after a sync
        replica.catch_up()
        engine.close()
        replica.catch_up()
        assert replica.lag()["current"] is True
        assert replica.describe()["role"] == "replica"

    def test_reads_before_bootstrap_fail_loudly(self, tmp_path):
        (tmp_path / "wal").mkdir()
        replica = ReplicaEngine(tmp_path / "wal")
        with pytest.raises(StoreError, match="not bootstrapped"):
            replica.read("dept")


class TestCatchUpDeadline:
    """The hard form of catch_up: a supervision loop polling a dead or
    torn primary must fail loudly and boundedly (DeadlineExceeded with
    the transient failure chained), never back off past any bound."""

    def _torn_log(self, tmp_path, n=8):
        schema, db, constraints = serving_state(n)
        wal = tmp_path / "torn.jsonl"
        engine = StoreEngine(db, constraints, wal=wal)
        session = SessionService(engine).session()
        session.run([("insert", "manager", manager_stream(n, 1)[0])])
        engine.close()
        with open(wal, "ab") as f:
            f.write(b'{"type": "commit", "ver')  # forever half-written
        return wal

    def test_deadline_lapses_boundedly_on_a_torn_tail(self, tmp_path):
        import time as _time

        from repro.errors import DeadlineExceeded

        replica = ReplicaEngine(self._torn_log(tmp_path))
        start = _time.monotonic()
        with pytest.raises(DeadlineExceeded, match="bytes behind"):
            replica.catch_up(deadline=0.3)
        elapsed = _time.monotonic() - start
        assert elapsed < 2.0  # bounded, not unbounded backoff
        assert replica.behind_bytes() > 0
        assert replica.ready  # the durable prefix still applied

    def test_deadline_overrides_timeout_and_sleeps_are_capped(
            self, tmp_path):
        import time as _time

        from repro.errors import DeadlineExceeded

        replica = ReplicaEngine(self._torn_log(tmp_path))
        start = _time.monotonic()
        with pytest.raises(DeadlineExceeded):
            # timeout says 30s; the hard deadline must win, and the
            # backoff sleeps must be clipped against what remains.
            replica.catch_up(timeout=30.0, poll_interval=5.0,
                             deadline=0.2)
        assert _time.monotonic() - start < 1.5

    def test_transient_oserror_is_retried_then_chained(self, tmp_path):
        from repro.errors import DeadlineExceeded

        schema, db, constraints = serving_state(8)
        wal = tmp_path / "w.jsonl"
        engine = StoreEngine(db, constraints, wal=wal)
        engine.close()
        replica = ReplicaEngine(wal)
        replica.sync = lambda max_records=None: (_ for _ in ()).throw(
            OSError("flaky disk"))
        with pytest.raises(DeadlineExceeded) as caught:
            replica.catch_up(deadline=0.2)
        assert isinstance(caught.value.__cause__, OSError)
        assert "flaky disk" in str(caught.value.__cause__)
        del replica.sync  # the class method again
        assert replica.catch_up(deadline=1.0) >= 0  # recovers cleanly

    def test_soft_mode_keeps_the_historical_contract(self, tmp_path):
        replica = ReplicaEngine(self._torn_log(tmp_path))
        # No deadline: lapse quietly with the prefix applied ...
        applied = replica.catch_up(timeout=0.2)
        assert applied >= 2 and replica.behind_bytes() > 0
        # ... and transient OSErrors propagate as before.
        replica.sync = lambda max_records=None: (_ for _ in ()).throw(
            OSError("flaky disk"))
        with pytest.raises(OSError, match="flaky disk"):
            replica.catch_up(timeout=0.2)
        del replica.sync
