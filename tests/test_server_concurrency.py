"""Server concurrency stress (slow lane): contended commits over real
sockets against the serializability oracle, and a replica staleness
bound under sustained writes.

The claim under test is that putting the wire between clients and the
store changes *nothing* about the concurrency contract: N socket
clients hammering contended commits through the asyncio front end — via
the commit-slot backpressure semaphore and per-connection sessions —
must leave a graph that replays serially to the identical state, just
as the in-process threads of ``test_store_concurrency`` do.  On top of
that, a replica tailing the primary's WAL while the writers run must
stay within a byte-staleness bound and converge exactly once the
writers stop.

Also here: the disconnect-mid-commit teardown race (the
``Session.close`` fix) exercised over real connections.
"""

import random
import threading

import pytest

from repro.errors import CommitRejected, StoreError, TransactionConflict
from repro.server import ClientPool, ReplicaEngine, StoreClient, StoreServer
from repro.store import SessionService, StoreEngine, Transaction, WriteAheadLog
from repro.workloads import (
    contended_commit_specs,
    disjoint_commit_specs,
    manager_stream,
    random_txn_specs,
    serving_state,
)

pytestmark = pytest.mark.slow


def _engine(n, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _assert_serializable(engine, branch="main"):
    """Identical oracle to test_store_concurrency: re-apply every
    committed version's ops single-threaded and demand each state."""
    versions = list(engine.graph.log(branch))
    state = versions[0].state
    for version in versions[1:]:
        txn = Transaction(engine.schema, None, branch)
        txn.ops = list(version.ops)
        changes = txn.net_changes(state)
        state = state.apply_changes(changes.added, changes.removed,
                                    changes.replaced)
        assert state == version.state, version.vid
    return state


def _specs_to_records(ops):
    """``(kind, relation, row[, propagate])`` specs as wire op records."""
    records = []
    for spec in ops:
        kind, relation, payload = spec[0], spec[1], spec[2]
        propagate = spec[3] if len(spec) > 3 else True
        record = {"op": kind, "relation": relation, "propagate": propagate}
        if kind in ("insert", "delete"):
            record["row"] = payload
        else:
            record["rows"] = payload
        records.append(record)
    return records


def _drive_over_wire(server, per_writer_specs, engine):
    """One socket client per writer, each committing its spec list;
    returns (committed, rejected) with committed read off graph
    growth (per-client attribution races, as in the in-process
    harness)."""
    before = len(engine.graph)
    counts = {"rejected": 0, "conflicts": 0}
    tally = threading.Lock()
    errors = []

    def worker(specs):
        rejected = conflicts = 0
        try:
            with StoreClient(*server.address) as client:
                for ops in specs:
                    try:
                        client.run(_specs_to_records(ops))
                    except CommitRejected:
                        rejected += 1
                    except TransactionConflict:
                        conflicts += 1  # server-side retries exhausted
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            return
        with tally:
            counts["rejected"] += rejected
            counts["conflicts"] += conflicts

    threads = [threading.Thread(target=worker, args=(specs,))
               for specs in per_writer_specs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return len(engine.graph) - before, counts["rejected"]


class TestWireSerializability:
    def test_disjoint_writers_over_sockets(self):
        """Footprint-disjoint writers over N connections: every commit
        lands, nothing conflicts, and the graph replays serially."""
        n, writers, per_writer = 120, 4, 8
        engine = _engine(n)
        specs = disjoint_commit_specs(
            manager_stream(n, writers * per_writer), writers)
        with StoreServer(engine, max_connections=writers + 2) as server:
            committed, rejected = _drive_over_wire(server, specs, engine)
        assert (committed, rejected) == (writers * per_writer, 0)
        final = _assert_serializable(engine)
        assert final == engine.state()
        assert engine.audit().ok()

    def test_contended_writers_over_sockets(self):
        """Every client races to insert the same rows through a small
        commit-slot pool: collisions retry server-side, duplicates net
        to no-ops, and the result equals one serial pass."""
        n, writers = 120, 6
        engine = _engine(n)
        rows = manager_stream(n, 10)
        specs = contended_commit_specs(rows, writers)
        with StoreServer(engine, max_inflight_commits=3) as server:
            committed, rejected = _drive_over_wire(server, specs, engine)
        assert rejected == 0
        assert committed >= len(rows)  # at least one win per row
        managers = engine.state().R("manager")
        assert all(any(t["pname"] == r["pname"] for t in managers)
                   for r in rows)
        _assert_serializable(engine)
        assert engine.audit().ok()

    def test_mixed_random_traffic_over_pool(self):
        """Random mixed transactions through a bounded ClientPool —
        rejections and conflicts are traffic; serializability is the
        invariant."""
        n, writers = 80, 5
        engine = _engine(n)
        rng = random.Random(11)
        specs = random_txn_specs(rng, engine.state(), 50, ops_per_txn=3)
        shards = [specs[i::writers] for i in range(writers)]
        counts = {"errors": []}

        with StoreServer(engine) as server:
            pool = ClientPool(*server.address, size=3)

            def worker(shard):
                try:
                    for ops in shard:
                        with pool.acquire() as client:
                            try:
                                client.run(_specs_to_records(ops))
                            except (CommitRejected,
                                    TransactionConflict,
                                    StoreError):
                                pass  # rejected traffic is traffic
                except Exception as exc:  # pragma: no cover
                    counts["errors"].append(exc)

            threads = [threading.Thread(target=worker, args=(shard,))
                       for shard in shards]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pool.close()
        assert not counts["errors"]
        _assert_serializable(engine)
        assert engine.audit().ok()


class TestReplicaUnderLoad:
    def test_staleness_bound_and_convergence(self, tmp_path):
        """While writers hammer the primary, a replica syncing on its
        own cadence must (a) never serve an invalid state — every head
        it exposes is a committed version id of the primary — and (b)
        have bounded byte-staleness at every probe; once the writers
        stop it converges to the primary's exact graph."""
        n, writers = 120, 4
        wal_dir = tmp_path / "wal"
        engine = _engine(
            n, wal=WriteAheadLog(wal_dir, segment_records=16),
            checkpoint_every=12)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.catch_up()

        specs = disjoint_commit_specs(manager_stream(n, 36), writers)
        lag_probes = []
        served_heads = []
        stop = threading.Event()

        def tail():
            while not stop.is_set():
                replica.sync()
                lag_probes.append(replica.behind_bytes())
                served_heads.append(replica.head_version().vid)

        tailer = threading.Thread(target=tail)
        with StoreServer(engine) as server:
            tailer.start()
            committed, rejected = _drive_over_wire(server, specs, engine)
            stop.set()
            tailer.join()
        assert (committed, rejected) == (36, 0)

        # (a) every served head was a real committed primary version
        valid = {v.vid for v in engine.graph.log()}
        assert set(served_heads) <= valid
        # (b) staleness stayed bounded: an actively syncing replica
        # never trails by more than the traffic written since its last
        # poll — a generous cap of a few checkpoint-size records (a
        # checkpoint carries the full document, the largest record).
        assert lag_probes, "tailer never probed"
        assert max(lag_probes) < 256 * 1024
        # the median probe should be tightly behind, not drifting
        assert sorted(lag_probes)[len(lag_probes) // 2] < 64 * 1024

        # convergence after the writers stop
        engine.close()
        replica.catch_up()
        assert replica.behind_bytes() == 0
        assert replica.head_version().vid == engine.head_version().vid
        lefts = list(replica.graph.log())
        rights = list(engine.graph.log())
        assert [v.vid for v in lefts] == [v.vid for v in rights]
        for a, b in zip(lefts, rights):
            assert a.state == b.state, a.vid

    def test_replica_server_reads_during_writes(self, tmp_path):
        """A read-only replica *server* answering wire reads while the
        primary commits: every read succeeds and reflects a committed
        version."""
        n = 100
        wal_dir = tmp_path / "wal"
        engine = _engine(n, wal=WriteAheadLog(wal_dir, segment_records=16),
                         checkpoint_every=10)
        replica = ReplicaEngine(wal_dir, from_checkpoint=False)
        replica.catch_up()
        rows = manager_stream(n, 24)
        specs = disjoint_commit_specs(rows, 3)

        with StoreServer(engine) as primary, \
                StoreServer(replica, sync_interval=0.005) as mirror:
            reads = {"versions": set(), "errors": []}
            stop = threading.Event()

            def reader():
                try:
                    with StoreClient(*mirror.address) as client:
                        while not stop.is_set():
                            _, vid = client.read_at("manager")
                            reads["versions"].add(vid)
                except Exception as exc:  # pragma: no cover
                    reads["errors"].append(exc)

            t = threading.Thread(target=reader)
            t.start()
            committed, rejected = _drive_over_wire(
                primary, specs, engine)
            stop.set()
            t.join()
            assert not reads["errors"]
            assert (committed, rejected) == (len(rows), 0)
            valid = {v.vid for v in engine.graph.log()}
            assert reads["versions"] <= valid

            # after a settle, the replica serves the primary's head
            replica.catch_up()
            with StoreClient(*mirror.address) as client:
                _, vid = client.read_at("manager")
            assert vid == engine.head_version().vid
        engine.close()


class TestDisconnectTeardown:
    def test_disconnect_mid_commit_releases_cleanly(self):
        """Clients that slam the connection shut right after (or while)
        issuing commits must not wedge the server: sessions are closed,
        pins released, and the surviving graph still serializes."""
        n = 120
        engine = _engine(n)
        rows = manager_stream(n, 24)
        with StoreServer(engine, max_inflight_commits=2) as server:
            for i, row in enumerate(rows):
                client = StoreClient(*server.address)
                txn = client.begin()
                txn.insert("manager", row)
                client.send_message(
                    {"id": 99, "op": "commit", "txn": txn.handle})
                if i % 2 == 0:
                    client.close()  # vanish without reading the answer
                else:
                    client.recv_message()
                    client.close()
            # the server still serves; sessions were swept
            with StoreClient(*server.address) as probe:
                assert probe.ping()
                status = probe.status()
                assert status["connections"] >= 1
        _assert_serializable(engine)
        assert engine.audit().ok()

    def test_session_close_mid_commit_surfaces_conflict(self):
        """The Session.close fix, driven directly: a commit retry loop
        in flight on another thread observes the closed flag at its
        next conflict and surfaces the TransactionConflict instead of
        retrying forever against a torn-down connection."""
        import time

        n = 120
        engine = _engine(n)
        service = SessionService(engine)
        victim = service.session()
        victim.pin()
        txn = victim.begin()
        txn.insert("manager", manager_stream(n, 1)[0])

        # Force the retry loop to spin: every commit attempt conflicts.
        calls = {"n": 0}

        def always_conflict(attempt):
            calls["n"] += 1
            raise TransactionConflict("forced contention", keys=())

        engine.commit = always_conflict  # instance shadow, test-only
        outcome = {}

        def committer():
            try:
                outcome["version"] = victim.commit(txn, max_retries=10**9)
            except TransactionConflict as exc:
                outcome["conflict"] = exc
            except StoreError as exc:
                outcome["other"] = exc

        t = threading.Thread(target=committer)
        t.start()
        deadline = time.monotonic() + 5.0
        while calls["n"] < 50 and time.monotonic() < deadline:
            time.sleep(0.001)  # let the loop demonstrably spin
        assert calls["n"] >= 50, "retry loop never got going"
        victim.close()  # the disconnect path, from another thread
        t.join(5.0)
        assert not t.is_alive(), "retry loop failed to observe close()"
        # the in-flight conflict surfaced; nothing was swallowed
        assert "conflict" in outcome
        assert str(outcome["conflict"]) == "forced contention"
        assert not victim.pins()  # pins released by the close
        assert service.live_sessions() == ()

        # and a commit after close is refused immediately
        with pytest.raises(StoreError, match="closed"):
            victim.commit(txn)
