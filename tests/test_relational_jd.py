"""Unit tests for join dependencies (repro.relational.jd)."""

import random

import pytest

from repro.errors import DependencyError
from repro.relational import MVD, Relation
from repro.relational.jd import (
    JoinDependency,
    holds_in,
    mvd_as_binary_jd,
    spurious_tuples,
)
from repro.relational.mvd import holds_in as mvd_holds_in

U = frozenset({"a", "b", "c"})


class TestConstruction:
    def test_components_must_cover(self):
        with pytest.raises(DependencyError):
            JoinDependency([{"a", "b"}], U)

    def test_needs_components(self):
        with pytest.raises(DependencyError):
            JoinDependency([], set())

    def test_trivial(self):
        assert JoinDependency([U], U).is_trivial()
        assert not JoinDependency([{"a", "b"}, {"b", "c"}], U).is_trivial()

    def test_duplicate_components_collapse(self):
        jd = JoinDependency([{"a", "b"}, {"a", "b"}, {"b", "c"}], U)
        assert len(jd.components) == 2


class TestSemantics:
    def test_holds_on_joinable(self):
        rel = Relation(U, [
            {"a": 1, "b": 2, "c": 3},
            {"a": 4, "b": 5, "c": 6},
        ])
        jd = JoinDependency([{"a", "b"}, {"b", "c"}], U)
        assert holds_in(jd, rel)

    def test_violation_and_witness(self):
        rel = Relation(U, [
            {"a": 1, "b": 2, "c": 3},
            {"a": 4, "b": 2, "c": 6},
        ])
        jd = JoinDependency([{"a", "b"}, {"b", "c"}], U)
        assert not holds_in(jd, rel)
        spurious = spurious_tuples(jd, rel)
        assert len(spurious) == 2  # the two mixed tuples

    def test_schema_mismatch(self):
        jd = JoinDependency([{"a", "b"}, {"b", "c"}], U)
        with pytest.raises(DependencyError):
            holds_in(jd, Relation({"a", "b"}))

    def test_empty_relation_satisfies(self):
        jd = JoinDependency([{"a", "b"}, {"b", "c"}], U)
        assert holds_in(jd, Relation(U))

    def test_ternary_jd(self):
        jd = JoinDependency([{"a", "b"}, {"b", "c"}, {"a", "c"}], U)
        one = Relation(U, [{"a": 1, "b": 1, "c": 1}])
        assert holds_in(jd, one)


class TestFaginCorrespondence:
    def test_mvd_iff_binary_jd_random(self):
        rng = random.Random(6)
        mvd = MVD({"a"}, {"b"}, U)
        jd = mvd_as_binary_jd(mvd)
        for _ in range(100):
            rows = [
                {"a": rng.randint(0, 1), "b": rng.randint(0, 1),
                 "c": rng.randint(0, 1)}
                for _ in range(rng.randint(0, 5))
            ]
            rel = Relation(U, rows)
            assert mvd_holds_in(mvd, rel) == holds_in(jd, rel)

    def test_jd_components_shape(self):
        jd = mvd_as_binary_jd(MVD({"a"}, {"b"}, U))
        assert set(jd.components) == {frozenset({"a", "b"}), frozenset({"a", "c"})}
