"""Unit tests for the workload generators (repro.workloads)."""

import random

import pytest

from repro.core import SpecialisationStructure, is_intersection_closed
from repro.errors import ExtensionError
from repro.workloads import (
    SHAPES,
    all_statements,
    enforce_extension_axiom,
    inject_containment_violation,
    inject_injectivity_violation,
    intersection_close,
    random_extension,
    random_fd,
    random_premises,
    random_schema,
    schema_of_attribute_sets,
)


class TestSchemas:
    def test_all_shapes_valid(self, rng):
        for shape in SHAPES:
            schema = random_schema(rng, shape=shape)
            assert len(schema) >= 1

    def test_chain_shape_is_chain(self, rng):
        schema = random_schema(rng, shape="chain", n_types=5)
        spec = SpecialisationStructure(schema)
        sizes = sorted(len(e.attributes) for e in schema)
        assert sizes == sorted(set(sizes))  # strictly growing
        assert len(spec.roots()) == 1

    def test_unknown_shape(self, rng):
        with pytest.raises(ValueError):
            random_schema(rng, shape="spiral")

    def test_deterministic_given_seed(self):
        s1 = random_schema(random.Random(5), shape="tree")
        s2 = random_schema(random.Random(5), shape="tree")
        assert {e.attributes for e in s1} == {e.attributes for e in s2}

    def test_schema_of_attribute_sets(self):
        schema = schema_of_attribute_sets([{"a"}, {"a", "b"}, {"a"}])
        assert len(schema) == 2  # duplicates collapse

    def test_intersection_close_idempotent(self, rng):
        schema = random_schema(rng, n_attrs=6, n_types=5)
        closed = intersection_close(schema)
        assert is_intersection_closed(closed)
        again = intersection_close(closed)
        assert len(again) == len(closed)


class TestExtensions:
    def test_random_extension_consistent_all_shapes(self):
        for seed in range(8):
            rng = random.Random(seed)
            schema = random_schema(rng, shape=rng.choice(list(SHAPES)))
            db = random_extension(rng, schema)
            assert db.satisfies_containment(), seed
            assert db.satisfies_extension_axiom(), seed

    def test_rows_scale(self, rng):
        schema = random_schema(rng, shape="chain", n_types=4)
        small = random_extension(random.Random(1), schema, rows_per_leaf=1)
        large = random_extension(random.Random(1), schema, rows_per_leaf=8)
        assert large.total_instances() >= small.total_instances()

    def test_enforce_extension_axiom_repairs(self, db):
        broken = db.replace("manager", db.R("manager").with_tuples([
            {"name": "ann", "age": 31, "depname": "sales", "budget": 500},
        ]))
        assert not broken.satisfies_extension_axiom()
        repaired = enforce_extension_axiom(broken)
        assert repaired.satisfies_extension_axiom()
        assert len(repaired.R("manager")) == 1

    def test_containment_injection(self, rng, db):
        broken = inject_containment_violation(rng, db)
        assert not broken.satisfies_containment()

    def test_injectivity_injection(self, rng, db):
        broken = inject_injectivity_violation(rng, db)
        assert not broken.satisfies_extension_axiom()

    def test_injection_needs_isa_edge(self, rng):
        flat = schema_of_attribute_sets([{"a"}, {"b"}])
        from repro.core import DatabaseExtension

        with pytest.raises(ExtensionError):
            inject_containment_violation(rng, DatabaseExtension(flat))


class TestFDWorkloads:
    def test_random_fd_well_typed(self, rng, schema):
        for _ in range(20):
            fd = random_fd(rng, schema)
            fd.validate(schema)

    def test_random_fd_none_when_impossible(self, rng):
        flat = schema_of_attribute_sets([{"a"}, {"b"}])
        assert random_fd(rng, flat) is None

    def test_random_premises_nontrivial(self, rng, schema):
        premises = random_premises(rng, schema, count=4)
        assert premises
        assert all(not fd.is_trivial() for fd in premises)

    def test_all_statements_complete(self, schema):
        statements = all_statements(schema)
        # G-set sizes: person 1, employee 2, department 1, manager 3, worksfor 4.
        assert len(statements) == 1 + 4 + 1 + 9 + 16
