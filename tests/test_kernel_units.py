"""Direct unit tests for the bitset kernel primitives.

The equivalence suite (``test_kernel_equivalence.py``) checks the
kernels against the naive oracles end to end; these tests pin the
primitives themselves — interning round-trips, mask edge cases
(empty set, full carrier, carriers wider than a machine word), the
counter-based closure, and the union-find inside the chase.
"""

from __future__ import annotations

import random

from repro.kernel import (
    FDKernel,
    UnionFind,
    Universe,
    bit_indices,
    chase_rows,
    close_under_intersection,
    close_under_union,
    closure_mask,
    is_lossless_indices,
    iter_bits,
    minimal_open_masks,
    topology_masks_from_subbase,
)


class TestUniverseInterning:
    def test_positions_follow_insertion_order(self):
        uni = Universe("cab")
        assert [uni.index_of(p) for p in "cab"] == [0, 1, 2]
        assert uni.point_at(1) == "a"

    def test_intern_is_idempotent(self):
        uni = Universe()
        first = uni.intern("x")
        assert uni.intern("x") == first
        assert len(uni) == 1

    def test_round_trip_arbitrary_sets(self):
        rng = random.Random(42)
        pool = [f"p{i}" for i in range(20)]
        uni = Universe(pool)
        for _ in range(200):
            subset = frozenset(rng.sample(pool, rng.randint(0, len(pool))))
            assert uni.decode(uni.encode(subset)) == subset

    def test_encode_empty_set_is_zero(self):
        uni = Universe("abc")
        assert uni.encode(()) == 0
        assert uni.decode(0) == frozenset()

    def test_full_carrier_round_trip(self):
        uni = Universe("abcde")
        assert uni.encode("abcde") == uni.full_mask() == 0b11111
        assert uni.decode(uni.full_mask()) == frozenset("abcde")

    def test_carrier_wider_than_machine_word(self):
        """>64 points spill into big ints transparently."""
        pool = [f"w{i}" for i in range(130)]
        uni = Universe(pool)
        assert len(uni) == 130
        full = uni.full_mask()
        assert full.bit_length() == 130
        assert uni.decode(full) == frozenset(pool)
        high = uni.encode([pool[127]])
        assert high == 1 << 127
        assert uni.decode(high | 1) == {pool[127], pool[0]}

    def test_encode_known_clips_strangers(self):
        uni = Universe("ab")
        assert uni.decode(uni.encode_known("abz")) == frozenset("ab")
        assert len(uni) == 2  # z was not interned

    def test_encode_interns_strangers(self):
        uni = Universe("ab")
        mask = uni.encode("abz")
        assert uni.decode(mask) == frozenset("abz")
        assert uni.index_of("z") == 2

    def test_encode_strict_raises_on_strangers(self):
        uni = Universe("ab")
        try:
            uni.encode_strict("abz")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_hashable_non_string_points(self):
        uni = Universe([("e", 1), ("e", 2)])
        mask = uni.encode([("e", 2)])
        assert uni.decode(mask) == {("e", 2)}


class TestBitops:
    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert bit_indices(0) == []

    def test_iter_bits_beyond_word_width(self):
        mask = (1 << 200) | (1 << 64) | 1
        assert list(iter_bits(mask)) == [0, 64, 200]

    def test_intersection_closure_contains_carrier(self):
        closed = close_under_intersection([0b011, 0b110], 0b111)
        assert closed == {0b111, 0b011, 0b110, 0b010}

    def test_union_closure_contains_empty(self):
        closed = close_under_union([0b01, 0b10])
        assert closed == {0b00, 0b01, 0b10, 0b11}


class TestTopologyKernels:
    def test_minimal_opens_are_subbase_intersections(self):
        # subbase {a}, {a,b} on carrier {a,b,c}
        minimal = minimal_open_masks(0b111, [0b001, 0b011])
        assert minimal == {0: 0b001, 1: 0b011, 2: 0b111}

    def test_topology_masks_include_bounds(self):
        opens = topology_masks_from_subbase(0b111, [0b001])
        assert 0 in opens and 0b111 in opens and 0b001 in opens

    def test_empty_carrier(self):
        assert topology_masks_from_subbase(0, []) == {0}


class TestClosureMask:
    def test_empty_lhs_fires_immediately(self):
        # {} -> a (bit 0)
        assert closure_mask(0, [(0, 0b01)], 2) == 0b01

    def test_chain_closure(self):
        # a->b, b->c, c->d over bits 0..3 starting from {a}
        fds = [(0b0001, 0b0010), (0b0010, 0b0100), (0b0100, 0b1000)]
        assert closure_mask(0b0001, fds, 4) == 0b1111

    def test_compound_lhs_waits_for_all_attrs(self):
        # ab->c: closure of {a} must not include c
        fds = [(0b011, 0b100)]
        assert closure_mask(0b001, fds, 3) == 0b001
        assert closure_mask(0b011, fds, 3) == 0b111

    def test_kernel_universe_grows_with_queries(self):
        kern = FDKernel([])
        assert kern.closure({"fresh"}) == {"fresh"}


class TestUnionFind:
    def test_smaller_root_survives(self):
        uf = UnionFind(5)
        assert uf.union(4, 2) == 2
        assert uf.find(4) == 2

    def test_path_compression_halves_chains(self):
        uf = UnionFind(6)
        # Build the chain 5 -> 4 -> 3 -> 2 -> 1 -> 0 by hand.
        uf.parent = [0, 0, 1, 2, 3, 4]
        assert uf.find(5) == 0
        # Path halving rewires every other node to its grandparent, so
        # the 5-hop chain must come back at most 3 hops long (and a
        # second find shortens it again).
        def hops_from(x: int) -> int:
            hops = 0
            while uf.parent[x] != x:
                x = uf.parent[x]
                hops += 1
            return hops

        assert hops_from(5) <= 3
        uf.find(5)
        assert hops_from(5) <= 2

    def test_transitive_merges_collapse(self):
        uf = UnionFind(10)
        for a, b in [(9, 8), (8, 7), (7, 6)]:
            uf.union(a, b)
        assert len({uf.find(x) for x in (6, 7, 8, 9)}) == 1


class TestChaseKernel:
    def test_classic_lossless_pair(self):
        # schema (a, b, c); parts {a,b}, {b,c}; b->c
        assert is_lossless_indices(3, [(0, 1), (1, 2)], [((1,), (2,))])

    def test_lossy_without_fd(self):
        assert not is_lossless_indices(3, [(0, 1), (1, 2)], [])

    def test_no_parts_is_lossy(self):
        assert not is_lossless_indices(3, [], [])

    def test_full_part_always_lossless(self):
        assert is_lossless_indices(3, [(0, 1, 2), (0,)], [])

    def test_chase_rows_resolves_symbols(self):
        rows, uf = chase_rows(3, [(0, 1), (1, 2)], [((1,), (2,))])
        # Row 0's c-cell must have been equated to the distinguished c.
        assert uf.find(rows[0][2]) == 2
