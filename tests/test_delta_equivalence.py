"""Delta-derived kernel state vs. full rebuilds: seeded differential suites.

PR 4's contract extends the established one: the incremental layer
(:mod:`repro.kernel.delta`, the chained dirty-context audit caches, and
the patched topology maintenance) is only allowed to be *faster* than
re-interning / re-auditing / regenerating from scratch, never different.
Each property drives a seeded random update chain (or subbase/point
edit) through both routes and asserts exact agreement — decoded rows,
partition and projection indexes, audit findings, constraint verdicts,
and generated opens — including the corners: empty relations, inserts of
never-seen symbols, >64-symbol columns, no-op updates, and wholesale
replaces interleaved with patches.
"""

from __future__ import annotations

import random

import pytest

from generators import (
    random_database_states,
    random_instance_fd,
    random_relation,
    random_update_sequence,
)

from repro.core import (
    EntityFD,
    FunctionalConstraint,
    Schema,
    SubsetConstraint,
    check_all,
    check_all_naive,
)
from repro.core.evolution import (
    AddAttribute,
    AddEntityType,
    RemoveAttribute,
    RemoveEntityType,
    RenameEntityType,
    analyse,
    evolved_structure,
)
from repro.core.generalisation import GeneralisationStructure
from repro.core.specialisation import SpecialisationStructure
from repro.errors import EvolutionError, ExtensionError, SchemaError
from repro.kernel import CheckSet, InstanceKernel, derive_instance
from repro.relational import Relation
from repro.topology import (
    space_with_subbase_member,
    space_without_subbase_member,
    topology_from_subbase,
)

N_CASES = 200
# Update-chain properties walk ~8 states per seed, so fewer seeds still
# yield well over 200 differential state comparisons per property.
N_CHAIN_SEEDS = 30
ATTRS = ["a", "b", "c", "d"]


def seeded(offset: int, n: int = N_CASES) -> list[random.Random]:
    return [random.Random(0xDE17A + offset * 10_007 + i) for i in range(n)]


def interned_state(kern, schema) -> dict:
    """A canonical, order-free view of a kernel's interned contents:
    decoded row sets, plus every cached partition and projection index
    decoded back to value space."""
    out = {}
    for e in schema:
        inst = kern.instance(e.name)
        decode = inst.decode_row
        rows = frozenset(decode(r) for r in inst.row_set)
        parts = {}
        for idxs, part in inst._partitions.items():
            names = tuple(inst.attrs[i] for i in idxs)
            columns = tuple(inst.symbols[i] for i in idxs)
            parts[names] = {
                tuple(columns[p][key[p]] for p in range(len(idxs))):
                    frozenset(decode(inst.rows[r]) for r in group)
                for key, group in part.items()
            }
        projs = {}
        for idxs, proj in inst._projections.items():
            names = tuple(inst.attrs[i] for i in idxs)
            columns = tuple(inst.symbols[i] for i in idxs)
            projs[names] = frozenset(
                tuple(columns[p][key[p]] for p in range(len(idxs)))
                for key in proj
            )
        out[e.name] = (rows, parts, projs)
    return out


def warmed(kern, schema, rng: random.Random):
    """Touch a few partition/projection indexes so patches have caches
    to maintain."""
    for e in schema:
        inst = kern.instance(e.name)
        attrs = sorted(e.attributes)
        for _ in range(2):
            subset = rng.sample(attrs, rng.randint(1, len(attrs)))
            idxs = inst.indices_of(subset)
            inst.partition(idxs)
            inst.projection(idxs)
    return kern


def chain_states(rng: random.Random, audit_every=None, constraints=None):
    """Random consistent + violating root states driven through a random
    update chain, with the root kernel warm (the delta path's trigger)."""
    out = []
    for schema, db in random_database_states(rng, n_attrs=5, n_types=4,
                                             rows_per_leaf=2):
        warmed(db.kernel, schema, rng)
        out.append((schema, random_update_sequence(
            rng, db, n_ops=8, audit_every=audit_every,
            constraints=constraints)))
    return out


# ----------------------------------------------------------------------
# Delta-derived kernels == fresh interns of the final state
# ----------------------------------------------------------------------
class TestDeltaKernelAgainstFresh:
    @pytest.mark.parametrize("rng", seeded(1, N_CHAIN_SEEDS))
    def test_update_chain_matches_fresh_intern(self, rng):
        """Every state of a random update chain: the chain-derived
        kernel equals a from-scratch intern — rows, cached partitions,
        cached projections — after decoding both to value space."""
        for schema, states in chain_states(rng):
            for db in states:
                derived = db.kernel
                fresh = db.kernel_naive()
                # Warm the fresh kernel's caches at the same indexes the
                # derived one carries, so the comparison covers them.
                for e in schema:
                    d_inst = derived.instance(e.name)
                    f_inst = fresh.instance(e.name)
                    for idxs in list(d_inst._partitions):
                        names = [d_inst.attrs[i] for i in idxs]
                        f_inst.partition(f_inst.indices_of(names))
                    for idxs in list(d_inst._projections):
                        names = [d_inst.attrs[i] for i in idxs]
                        f_inst.projection(f_inst.indices_of(names))
                assert interned_state(derived, schema) == \
                    interned_state(fresh, schema)

    @pytest.mark.parametrize("rng", seeded(2, N_CHAIN_SEEDS))
    def test_shared_tables_stay_consistent(self, rng):
        """Derived kernels share append-only symbol tables: every value
        of every live row decodes back to itself through the shared
        tables, and untouched relations share instances by reference."""
        for schema, states in chain_states(rng):
            for prev, db in zip(states, states[1:]):
                kern = db.kernel
                changed = db._delta.changed if db._delta is not None else None
                for e in schema:
                    inst = kern.instance(e.name)
                    for t in db.R(e).tuples:
                        items = tuple(t)
                        for pos, (_, value) in enumerate(items):
                            sid = inst.tables[pos][value]
                            assert inst.symbols[pos][sid] == value
                    if changed is not None and e.name not in changed \
                            and prev._kernel is not None:
                        assert inst is prev._kernel.instance(e.name)

    @pytest.mark.parametrize("rng", seeded(3, 60))
    def test_instance_patch_corners(self, rng):
        """derive_instance on raw relations: empty instances, no-op
        deltas, never-seen symbols, >64-symbol columns, and add+remove
        of the same row in one step all match a fresh intern."""
        wide = rng.random() < 0.3
        domain = 90 if wide else 3
        rel = random_relation(rng, ATTRS, max_rows=0 if rng.random() < 0.2
                              else 100 if wide else 8, domain=domain)
        parent = InstanceKernel(rel)
        attrs = sorted(rel.schema)
        idxs = parent.indices_of(rng.sample(attrs, 2))
        parent.partition(idxs)
        parent.projection(idxs)

        def row_items(values):
            return tuple(zip(attrs, values))

        added = [row_items([rng.randint(0, domain + 40) for _ in attrs])
                 for _ in range(rng.randint(0, 4))]
        removed = [tuple(t) for t in
                   rng.sample(sorted(rel.tuples, key=repr),
                              min(len(rel), rng.randint(0, 3)))]
        removed += [row_items([rng.randint(0, domain + 80) for _ in attrs])]
        if added and rng.random() < 0.5:
            removed.append(added[0])  # add+remove the same row
        derived, delta = derive_instance(parent, added, removed)
        survivors = {tuple(t) for t in rel.tuples} - set(removed)
        survivors |= set(added)
        fresh_rel = Relation(attrs, [dict(r) for r in survivors])
        fresh = InstanceKernel(fresh_rel)
        assert {derived.decode_row(r) for r in derived.row_set} == \
            {fresh.decode_row(r) for r in fresh.row_set}
        assert derived.n_rows == len(derived.row_set) == len(fresh_rel)
        # patched partition agrees with a freshly built one
        part = derived.partition(idxs)
        names = [derived.attrs[i] for i in idxs]
        fresh_part = fresh.partition(fresh.indices_of(names))
        decode = derived.decode_row
        fdecode = fresh.decode_row
        assert {
            frozenset(decode(derived.rows[r]) for r in group)
            for group in part.values()
        } == {
            frozenset(fdecode(fresh.rows[r]) for r in group)
            for group in fresh_part.values()
        }
        if not delta:
            assert derived is parent


# ----------------------------------------------------------------------
# Dirty-context audits == full audits
# ----------------------------------------------------------------------
def state_constraints(schema: Schema) -> list:
    """A small constraint set over whatever ISA pairs the schema has."""
    out = []
    spec = SpecialisationStructure(schema)
    for e in sorted(schema, key=lambda t: t.name):
        for s in sorted(spec.proper_specialisations(e)):
            out.append(SubsetConstraint(s, e))
            out.append(FunctionalConstraint(EntityFD(e, e, s)))
            if len(out) >= 6:
                return out
    return out


class TestDirtyContextAudits:
    @pytest.mark.parametrize("rng", seeded(4, N_CHAIN_SEEDS))
    def test_chained_audits_match_naive(self, rng):
        """Auditing every state of an update chain (caches warm from the
        predecessors) produces exactly the findings of the naive
        per-state audit."""
        for schema, states in chain_states(rng):
            constraints = state_constraints(schema)
            for db in states:
                routed = check_all(schema, db, constraints=constraints)
                naive = check_all_naive(schema, db, constraints=constraints)
                assert routed.findings == naive.findings

    @pytest.mark.parametrize("rng", seeded(5, N_CHAIN_SEEDS))
    def test_interleaved_audit_cadence(self, rng):
        """Audits at a coarser cadence than the updates (the bench's
        shape: several updates per audit) still agree with naive."""
        for schema, states in chain_states(rng, audit_every=3):
            constraints = state_constraints(schema)
            db = states[-1]
            routed = check_all(schema, db, constraints=constraints)
            naive = check_all_naive(schema, db, constraints=constraints)
            assert routed.findings == naive.findings
            assert db.containment_violations() == \
                db.containment_violations_naive()
            for e in sorted(db.contributors.compound_types()):
                got = db.extension_axiom_violations(e)
                want = db.extension_axiom_violations_naive(e)
                assert got["unsupported"] == want["unsupported"]
                assert got["collisions"] == want["collisions"]

    @pytest.mark.parametrize("rng", seeded(6, N_CHAIN_SEEDS))
    def test_enforce_on_derived_states_matches_naive(self, rng):
        """The repair loop (now patch-delta per iteration) reaches the
        same fixpoint as the object-level loop, also when started from a
        chain-derived state."""
        for schema, states in chain_states(rng):
            from repro.workloads import (
                enforce_extension_axiom,
                enforce_extension_axiom_naive,
            )
            db = states[-1]
            assert enforce_extension_axiom(db) == \
                enforce_extension_axiom_naive(db)


# ----------------------------------------------------------------------
# CheckSet.recheck == a fresh recorded run
# ----------------------------------------------------------------------
class TestCheckSetRecheck:
    @pytest.mark.parametrize("rng", seeded(7))
    def test_recheck_matches_fresh_run(self, rng):
        """After a row delta, rechecking only the dirty lhs-groups gives
        the verdicts of a full fresh sweep — across chained deltas."""
        rel = random_relation(rng, ATTRS, max_rows=10)
        parent = InstanceKernel(rel)
        fds = [random_instance_fd(rng, ATTRS) for _ in range(3)]
        checks = CheckSet(parent)
        for i, fd in enumerate(fds):
            checks.add_fd(("fd", i), fd.lhs, fd.rhs)
        first = checks.run(record=True)
        assert {k: v.ok for k, v in checks.run().items()} == \
            {k: v.ok for k, v in first.items()}
        inst = parent
        live = checks
        attrs = sorted(rel.schema)
        for _ in range(3):
            added = [tuple(zip(attrs, [rng.randint(0, 4) for _ in attrs]))
                     for _ in range(rng.randint(0, 3))]
            removed = [inst.decode_row(r) for r in
                       rng.sample(sorted(inst.row_set),
                                  min(len(inst.row_set), rng.randint(0, 2)))]
            inst, delta = derive_instance(inst, added, removed)
            live = live.rebound(inst)
            got = live.recheck(delta.added, delta.removed)
            fresh = CheckSet(inst)
            for i, fd in enumerate(fds):
                fresh.add_fd(("fd", i), fd.lhs, fd.rhs)
            want = fresh.run()
            assert {k: v.ok for k, v in got.items()} == \
                {k: v.ok for k, v in want.items()}

    def test_recheck_requires_recorded_run(self):
        inst = InstanceKernel(Relation(ATTRS))
        checks = CheckSet(inst).add_fd("k", {"a"}, {"b"})
        checks.run()
        with pytest.raises(ValueError):
            checks.recheck((), ())


# ----------------------------------------------------------------------
# Incremental topology maintenance == regeneration
# ----------------------------------------------------------------------
def random_named_types(rng: random.Random, attrs, n_max=7):
    from repro.core.entity_types import EntityType

    seen, types = set(), []
    for i in range(rng.randint(1, n_max)):
        s = frozenset(rng.sample(attrs, rng.randint(1, len(attrs))))
        if s not in seen:
            seen.add(s)
            types.append(EntityType(f"t{i}", s))
    return types, seen


@pytest.fixture(scope="module")
def topo_universe():
    from repro.core.attributes import AttributeUniverse

    attrs = list("abcdef")
    return attrs, AttributeUniverse.from_values({a: [0, 1] for a in attrs})


class TestIncrementalTopology:
    @pytest.mark.parametrize("rng", seeded(8))
    def test_structures_evolve_like_regeneration(self, rng, topo_universe):
        """with_type_added/removed on built specialisation and
        generalisation structures equal full regeneration — opens,
        carrier, and every minimal open."""
        from repro.core.entity_types import EntityType

        attrs, auni = topo_universe
        types, seen = random_named_types(rng, attrs)
        schema = Schema(auni, types)
        spec = SpecialisationStructure(schema)
        gen = GeneralisationStructure(schema)
        spec.space, gen.space  # build both

        new_set = frozenset(rng.sample(attrs, rng.randint(1, len(attrs))))
        if new_set not in seen:
            t = EntityType("fresh", new_set)
            grown = schema.with_entity_type(t)
            for derived, oracle in (
                (spec.with_type_added(grown, t), SpecialisationStructure(grown)),
                (gen.with_type_added(grown, t), GeneralisationStructure(grown)),
            ):
                assert derived.space.opens == oracle.space.opens
                assert derived.space.points == oracle.space.points
                assert all(derived.space.minimal_open(p)
                           == oracle.space.minimal_open(p)
                           for p in oracle.space.points)
        if len(types) > 1:
            victim = rng.choice(types)
            shrunk = schema.without_entity_type(victim.name)
            for derived, oracle in (
                (spec.with_type_removed(shrunk, victim),
                 SpecialisationStructure(shrunk)),
                (gen.with_type_removed(shrunk, victim),
                 GeneralisationStructure(shrunk)),
            ):
                assert derived.space.opens == oracle.space.opens
                assert derived.space.points == oracle.space.points
                assert all(derived.space.minimal_open(p)
                           == oracle.space.minimal_open(p)
                           for p in oracle.space.points)

    @pytest.mark.parametrize("rng", seeded(9))
    def test_subbase_member_edits_match_regeneration(self, rng):
        """The generic subbase-member add/remove patches equal the
        section-3.1 generation on the edited family — including empty
        members, duplicate members, and the whole-carrier member."""
        pts = [f"p{i}" for i in range(rng.randint(1, 8))]
        fam = [frozenset(rng.sample(pts, rng.randint(0, len(pts))))
               for _ in range(rng.randint(0, 5))]
        space = topology_from_subbase(pts, fam)
        member = rng.choice(
            [frozenset(rng.sample(pts, rng.randint(0, len(pts)))),
             frozenset(pts), frozenset()])
        grown = space_with_subbase_member(space, member)
        assert grown.opens == topology_from_subbase(pts, fam + [member]).opens
        assert all(grown.minimal_open(p) ==
                   topology_from_subbase(pts, fam + [member]).minimal_open(p)
                   for p in grown.points)
        if fam:
            gone = rng.choice(fam)
            rest = [m for m in fam if m != gone]
            shrunk = space_without_subbase_member(space, rest, gone)
            assert shrunk.opens == topology_from_subbase(pts, rest).opens

    @pytest.mark.parametrize("rng", seeded(10, 80))
    def test_evolution_analysis_uses_patched_spaces(self, rng, topo_universe):
        """analyse() with the incremental space derivation produces the
        same embedding verdict as regenerating both spaces."""
        from repro.core.evolution import intension_map
        from repro.core.extension import DatabaseExtension

        attrs, auni = topo_universe
        types, seen = random_named_types(rng, attrs, n_max=5)
        schema = Schema(auni, types)
        db = DatabaseExtension(schema)
        changes = [RenameEntityType(types[0].name, "renamed")]
        new_set = frozenset(rng.sample(attrs, rng.randint(1, len(attrs))))
        if new_set not in seen:
            changes.append(AddEntityType("fresh", new_set))
        if len(types) > 1:
            changes.append(RemoveEntityType(types[-1].name))
        victim = rng.choice(types)
        missing = [a for a in attrs if a not in victim.attributes]
        if missing and (victim.attributes | {missing[0]}) not in seen:
            changes.append(AddAttribute(victim.name, missing[0], default=0))
        if len(victim.attributes) > 1:
            gone = sorted(victim.attributes)[0]
            if (victim.attributes - {gone}) not in seen:
                changes.append(RemoveAttribute(victim.name, gone))
        for change in changes:
            try:
                new_schema = change.apply(schema)
            except (SchemaError, EvolutionError):
                continue
            derived = evolved_structure(db.spec, change, new_schema)
            oracle = SpecialisationStructure(new_schema)
            assert derived.space.opens == oracle.space.opens
            assert derived.space.points == oracle.space.points
            report = analyse(db, change)
            mapping = change.type_mapping(schema, new_schema)
            try:
                embeds = intension_map(schema, new_schema, mapping).is_embedding()
            except EvolutionError:
                embeds = False
            assert report.intension_embeds == embeds


# ----------------------------------------------------------------------
# Update-method validation (satellite bugfixes) and memo behaviour
# ----------------------------------------------------------------------
class TestUpdateValidation:
    @pytest.fixture()
    def db(self):
        schema = Schema.from_attribute_sets(
            {"person": {"name"}, "employee": {"name", "dept"}},
            domains={"name": ["a", "b", "c"], "dept": [1, 2]},
        )
        from repro.core.extension import DatabaseExtension

        return DatabaseExtension(schema, {
            "person": [{"name": "a"}],
            "employee": [{"name": "a", "dept": 1}],
        })

    def test_delete_rejects_mismatched_schema(self, db):
        """delete used to silently no-op on a row of the wrong shape;
        it must validate exactly as insert does."""
        with pytest.raises(ExtensionError):
            db.delete("person", {"name": "a", "dept": 1})
        with pytest.raises(ExtensionError):
            db.delete("employee", {"name": "a"})

    def test_remove_tuples_rejects_mismatched_schema(self, db):
        with pytest.raises(ExtensionError):
            db.remove_tuples("person", [{"bogus": 1}])

    def test_replace_rejects_wrong_attribute_relation(self, db):
        with pytest.raises(ExtensionError):
            db.replace("person", Relation({"name", "dept"},
                                          [{"name": "a", "dept": 1}]))
        with pytest.raises(ExtensionError):
            db.replace("person", [{"name": "zzz-not-in-domain"}])

    def test_noop_updates_return_self(self, db):
        assert db.insert("person", {"name": "a"}) is db
        assert db.delete("person", {"name": "c"}, propagate=False) is db
        assert db.remove_tuples("employee", []) is db

    def test_delete_validation_happens_before_mutation(self, db):
        before = dict(db._relations)
        try:
            db.delete("person", {"name": "a", "dept": 1})
        except ExtensionError:
            pass
        assert db._relations == before


class TestInstanceMemoLRU:
    def test_eviction_is_lru_not_wholesale(self):
        from repro.kernel import instance as instance_mod

        saved_memo = dict(instance_mod._INSTANCE_MEMO)
        saved_cap = instance_mod._INSTANCE_MEMO_CAP
        try:
            instance_mod._INSTANCE_MEMO.clear()
            instance_mod._INSTANCE_MEMO_CAP = 3
            rels = [Relation(["a"], [{"a": i}]) for i in range(4)]
            first = [InstanceKernel.of(r) for r in rels[:3]]
            # Touch rels[0] so rels[1] is the LRU entry, then overflow.
            assert InstanceKernel.of(rels[0]) is first[0]
            InstanceKernel.of(rels[3])
            assert rels[1] not in instance_mod._INSTANCE_MEMO
            assert InstanceKernel.of(rels[0]) is first[0]
            assert InstanceKernel.of(rels[2]) is first[2]
        finally:
            instance_mod._INSTANCE_MEMO.clear()
            instance_mod._INSTANCE_MEMO.update(saved_memo)
            instance_mod._INSTANCE_MEMO_CAP = saved_cap
