"""Unit tests for repro.topology.space."""

import pytest

from repro.errors import TopologyError
from repro.topology import FiniteSpace

SIERPINSKI = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])


class TestValidation:
    def test_accepts_sierpinski(self):
        assert len(SIERPINSKI.opens) == 3

    def test_rejects_missing_empty_set(self):
        with pytest.raises(TopologyError):
            FiniteSpace("ab", [{"a"}, {"a", "b"}])

    def test_rejects_missing_carrier(self):
        with pytest.raises(TopologyError):
            FiniteSpace("ab", [set(), {"a"}])

    def test_rejects_union_gap(self):
        with pytest.raises(TopologyError):
            FiniteSpace("abc", [set(), {"a"}, {"b"}, {"a", "b", "c"}])

    def test_rejects_intersection_gap(self):
        with pytest.raises(TopologyError):
            FiniteSpace("abc", [set(), {"a", "b"}, {"b", "c"},
                                {"a", "b", "c"}])

    def test_rejects_stray_points(self):
        with pytest.raises(TopologyError):
            FiniteSpace("ab", [set(), {"z"}, {"a", "b"}])


class TestConstructors:
    def test_discrete_has_full_powerset(self):
        space = FiniteSpace.discrete("abc")
        assert len(space.opens) == 8

    def test_indiscrete_has_two_opens(self):
        space = FiniteSpace.indiscrete("abc")
        assert len(space.opens) == 2

    def test_discrete_singletons_open(self):
        space = FiniteSpace.discrete("ab")
        assert space.is_open({"a"}) and space.is_open({"b"})


class TestPointSetOperators:
    def test_interior_of_subset(self):
        assert SIERPINSKI.interior({"a"}) == frozenset({"a"})
        assert SIERPINSKI.interior({"b"}) == frozenset()

    def test_closure_of_closed_point(self):
        assert SIERPINSKI.closure({"b"}) == frozenset({"b"})

    def test_closure_of_open_point_is_everything(self):
        assert SIERPINSKI.closure({"a"}) == frozenset({"a", "b"})

    def test_boundary(self):
        assert SIERPINSKI.boundary({"a"}) == frozenset({"b"})

    def test_exterior_is_interior_of_complement(self):
        assert SIERPINSKI.exterior({"a"}) == SIERPINSKI.interior({"b"})

    def test_density(self):
        assert SIERPINSKI.is_dense({"a"})
        assert not SIERPINSKI.is_dense({"b"})

    def test_closed_sets_are_complements(self):
        closed = SIERPINSKI.closed_sets()
        assert frozenset({"b"}) in closed
        assert frozenset({"a"}) not in closed


class TestNeighbourhoods:
    def test_minimal_open(self):
        assert SIERPINSKI.minimal_open("a") == frozenset({"a"})
        assert SIERPINSKI.minimal_open("b") == frozenset({"a", "b"})

    def test_minimal_open_unknown_point(self):
        with pytest.raises(TopologyError):
            SIERPINSKI.minimal_open("z")

    def test_neighbourhoods_contain_point(self):
        for u in SIERPINSKI.neighbourhoods("b"):
            assert "b" in u

    def test_minimal_open_cached(self):
        first = SIERPINSKI.minimal_open("b")
        assert SIERPINSKI.minimal_open("b") is first

    def test_open_cover_detection(self):
        assert SIERPINSKI.is_open_cover([{"a"}, {"a", "b"}])
        assert not SIERPINSKI.is_open_cover([{"a"}])
        assert not SIERPINSKI.is_open_cover([{"b"}, {"a", "b"}])  # {"b"} not open


class TestConnectivity:
    def test_sierpinski_connected(self):
        assert SIERPINSKI.is_connected()

    def test_discrete_two_points_disconnected(self):
        assert not FiniteSpace.discrete("ab").is_connected()

    def test_components_of_disjoint_union_shape(self):
        space = FiniteSpace("abcd", [set(), {"a"}, {"a", "b"}, {"c"},
                                     {"c", "d"}, {"a", "c"}, {"a", "b", "c"},
                                     {"a", "c", "d"}, {"a", "b", "c", "d"}])
        components = space.connected_components()
        assert frozenset({"a", "b"}) in components
        assert frozenset({"c", "d"}) in components

    def test_components_partition_carrier(self):
        components = SIERPINSKI.connected_components()
        assert frozenset().union(*components) == SIERPINSKI.points


class TestDunder:
    def test_equality_and_hash(self):
        other = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])
        assert other == SIERPINSKI
        assert hash(other) == hash(SIERPINSKI)

    def test_len_and_contains(self):
        assert len(SIERPINSKI) == 2
        assert "a" in SIERPINSKI
        assert "z" not in SIERPINSKI
