"""Unit tests for domain constraints and MVDs as their special case."""

import pytest

from repro.core import (
    DomainConstraint,
    EntityMVD,
    fd_domain_constraint,
    mvd_domain_constraint,
)
from repro.core.domain_constraints import holds as mvd_holds
from repro.errors import DependencyError


@pytest.fixture
def entity_mvd(schema):
    """mvd(employee, department, worksfor) — trivially shaped here (the
    union covers the context), so build a sharper one over person."""
    return EntityMVD(schema["person"], schema["department"], schema["worksfor"])


class TestEntityMVD:
    def test_typing_validated(self, schema):
        bad = EntityMVD(schema["manager"], schema["person"], schema["employee"])
        with pytest.raises(DependencyError):
            bad.validate(schema)

    def test_as_relational(self, schema, entity_mvd):
        relational = entity_mvd.as_relational()
        assert relational.lhs == schema["person"].attributes
        assert relational.universe == schema["worksfor"].attributes

    def test_holds_on_example(self, db, entity_mvd):
        # worksfor has one department per employee; swap tuples exist
        # degenerately, so the MVD holds on the small state.
        assert mvd_holds(entity_mvd, db)

    def test_violation_constructible(self, db, schema, entity_mvd):
        # ann appears with two departments but without the swaps of the
        # complement part (location follows depname): build a correlated
        # pattern by hand.
        broken = db.replace("worksfor", [
            {"name": "ann", "age": 31, "depname": "sales", "location": "amsterdam"},
            {"name": "ann", "age": 31, "depname": "research", "location": "utrecht"},
        ])
        # person={name,age} ->> department={depname,location}: complement
        # is empty here (lhs | rhs == universe), so this MVD is trivial...
        assert mvd_holds(entity_mvd, broken)


class TestPaperClaim:
    def test_mvd_is_a_domain_constraint(self, db, schema, entity_mvd):
        """The section-6 claim: for every state, the MVD and its domain-
        constraint form agree."""
        constraint = mvd_domain_constraint(schema, entity_mvd)
        assert constraint.holds(db) == mvd_holds(entity_mvd, db)

    def test_agreement_on_many_states(self, db, schema):
        import random

        from repro.workloads import random_extension

        mvd = EntityMVD(schema["person"], schema["employee"], schema["worksfor"])
        constraint = mvd_domain_constraint(schema, mvd)
        for seed in range(10):
            state = random_extension(random.Random(seed), schema, rows_per_leaf=3)
            assert constraint.holds(state) == mvd_holds(mvd, state), seed

    def test_violation_report_names_swaps(self, schema):
        """A genuinely non-trivial entity MVD with a visible violation."""
        from repro.core import DatabaseExtension, EntityType, Schema

        s = Schema.from_attribute_sets({
            "course": {"cname"},
            "teacher": {"tname"},
            "offering": {"cname", "tname", "book"},
        })
        mvd = EntityMVD(s["course"], s["teacher"], s["offering"])
        constraint = mvd_domain_constraint(s, mvd)
        db = DatabaseExtension(s, {
            "course": [{"cname": 0}],
            "teacher": [{"tname": 1}, {"tname": 2}],
            "offering": [
                {"cname": 0, "tname": 1, "book": 3},
                {"cname": 0, "tname": 2, "book": 4},
            ],
        })
        assert not constraint.holds(db)
        report = constraint.violation_report(db)
        assert len(report) == 2
        assert all("swap tuple" in line for line in report)

    def test_fd_is_a_domain_constraint_too(self, db, schema, worksfor_fd):
        constraint = fd_domain_constraint(schema, worksfor_fd)
        from repro.core.fd import holds

        assert constraint.holds(db) == holds(worksfor_fd, db)
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        assert constraint.holds(broken) == holds(worksfor_fd, broken)


class TestDomainConstraintGenerality:
    def test_parity_constraint(self, db, schema):
        """A constraint no FD or MVD can express: even cardinality."""
        constraint = DomainConstraint(
            "even-persons", schema["person"],
            lambda relation: len(relation) % 2 == 0,
        )
        assert constraint.holds(db)  # 4 persons in the example
        grown = db.insert("person", {"name": "eva", "age": 47})
        assert not constraint.holds(grown)

    def test_integrity_axiom_validation(self, schema):
        from repro.core import ConstraintSet, Schema

        other = Schema.from_attribute_sets({"x": {"a"}})
        constraint = DomainConstraint("alien", other["x"], lambda r: True)
        with pytest.raises(DependencyError):
            ConstraintSet(schema, [constraint])

    def test_custom_explainer(self, db, schema):
        constraint = DomainConstraint(
            "empty-person", schema["person"],
            lambda relation: len(relation) == 0,
            explain=lambda relation: [f"{len(relation)} stray instance(s)"],
        )
        report = constraint.violation_report(db)
        assert report == ["empty-person: 4 stray instance(s)"]
