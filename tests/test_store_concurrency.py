"""Concurrency tests: N writer threads against one store.

The serializability oracle: after the threads finish, re-apply every
committed version's logged operations *single-threaded*, in commit
order, and demand the identical state at every version — which is
exactly the claim the optimistic rebase makes (a commit admitted with a
disjoint footprint equals the commit that would have happened serially
at the head).

The quick test runs in tier-1; the heavier mixes and the
delta-vs-global-lock throughput gate live in the slow lane
(``-m slow``, wired into CI's slow job).
"""

import random
import threading
import time

import pytest

from repro.errors import CommitRejected
from repro.store import SessionService, StoreEngine, Transaction
from repro.workloads import (
    contended_commit_specs,
    disjoint_commit_specs,
    manager_stream,
    random_txn_specs,
    serving_state,
)


def _engine(n, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _drive(engine, per_writer_specs, max_retries=64):
    """Run each writer's commit specs in its own thread; returns
    (committed, rejected) counts.  The committed count is read off
    graph growth — under concurrency a no-op commit returns a head
    another writer may have just advanced, so per-thread attribution
    would race."""
    service = SessionService(engine)
    before = len(engine.graph)
    counts = {"rejected": 0}
    tally = threading.Lock()
    errors = []

    def worker(specs):
        session = service.session()
        rejected = 0
        for ops in specs:
            try:
                session.run(ops, max_retries=max_retries)
            except CommitRejected:
                rejected += 1
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)
                return
        with tally:
            counts["rejected"] += rejected

    threads = [threading.Thread(target=worker, args=(specs,))
               for specs in per_writer_specs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return len(engine.graph) - before, counts["rejected"]


def _assert_serializable(engine, branch="main"):
    """Replaying the committed ops serially reproduces every state."""
    versions = list(engine.graph.log(branch))
    state = versions[0].state
    for version in versions[1:]:
        txn = Transaction(engine.schema, None, branch)
        txn.ops = list(version.ops)
        changes = txn.net_changes(state)
        state = state.apply_changes(changes.added, changes.removed,
                                    changes.replaced)
        assert state == version.state, version.vid
    return state


class TestDisjointWriters:
    def test_all_commit_and_serialize(self):
        n, writers, per_writer = 120, 4, 10
        engine = _engine(n)
        specs = disjoint_commit_specs(
            manager_stream(n, writers * per_writer), writers)
        committed, rejected = _drive(engine, specs)
        assert (committed, rejected) == (writers * per_writer, 0)
        assert len(engine.graph) == committed + 1
        final = _assert_serializable(engine)
        assert final == engine.state()
        assert engine.audit().ok()


@pytest.mark.slow
class TestStress:
    def test_contended_writers_serialize(self):
        """Every writer races to insert the same rows: duplicates net to
        no-ops, footprint collisions retry, and the result must equal
        one serial pass."""
        n, writers = 120, 6
        engine = _engine(n)
        rows = manager_stream(n, 12)
        committed, rejected = _drive(
            engine, contended_commit_specs(rows, writers))
        assert rejected == 0
        assert committed >= len(rows)  # at least one win per row
        managers = engine.state().R("manager")
        assert all(any(t["pname"] == r["pname"] for t in managers)
                   for r in rows)
        _assert_serializable(engine)
        assert engine.audit().ok()

    def test_mixed_random_traffic_serializes(self):
        n, writers = 80, 5
        engine = _engine(n)
        rng = random.Random(7)
        specs = random_txn_specs(rng, engine.state(), 60, ops_per_txn=3)
        committed, rejected = _drive(
            engine, [specs[i::writers] for i in range(writers)])
        assert committed + rejected > 0
        _assert_serializable(engine)
        assert engine.audit().ok()

    def test_disjoint_and_conflicting_mix_with_wal(self, tmp_path):
        n, writers = 120, 4
        path = tmp_path / "stress.wal"
        engine = _engine(n, wal=path)
        rows = manager_stream(n, 24)
        disjoint = disjoint_commit_specs(rows[:16], writers)
        contended = contended_commit_specs(rows[16:], writers)
        mixed = [d + c for d, c in zip(disjoint, contended)]
        _drive(engine, mixed)
        _assert_serializable(engine)
        engine.close()
        replayed = StoreEngine.replay(path, verify=True)
        assert replayed.state() == engine.state()

    def test_throughput_disjoint_delta_vs_global_lock(self):
        """The acceptance gate: concurrent disjoint-writer commits
        through the delta gate must beat the global-lock (serial
        rebuild + cold audit) baseline by >= 5x at 1000 rows/relation.
        The real margin is orders of magnitude; 5x keeps the assertion
        robust on loaded CI machines."""
        n, writers = 1000, 4
        rows = manager_stream(n, 64)

        delta_engine = _engine(n, validation="delta")
        specs = disjoint_commit_specs(rows, writers)
        start = time.perf_counter()
        committed, _ = _drive(delta_engine, specs)
        delta_rate = committed / (time.perf_counter() - start)
        assert committed == len(rows)
        assert delta_engine.audit().ok()

        serial_engine = _engine(n, validation="serial")
        serial_rows = rows[:6]  # each commit costs a full rebuild+audit
        start = time.perf_counter()
        committed, _ = _drive(
            serial_engine, disjoint_commit_specs(serial_rows, writers))
        serial_rate = committed / (time.perf_counter() - start)
        assert committed == len(serial_rows)

        assert delta_rate >= 5 * serial_rate, (delta_rate, serial_rate)
