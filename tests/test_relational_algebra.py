"""Unit tests for the relational algebra (repro.relational.algebra)."""

import pytest

from repro.errors import RelationError
from repro.relational import (
    Relation,
    Tuple,
    cartesian_product,
    difference,
    division,
    intersection,
    is_lossless_decomposition,
    join_all,
    natural_join,
    project,
    rename,
    select,
    semijoin,
    union,
)

R = Relation.from_rows(["a", "b"], [[1, 10], [2, 20], [3, 10]])
S = Relation.from_rows(["b", "c"], [[10, "x"], [20, "y"], [30, "z"]])


class TestProjectSelectRename:
    def test_project_removes_duplicates(self):
        assert len(project(R, {"b"})) == 2

    def test_project_missing_attr(self):
        with pytest.raises(RelationError):
            project(R, {"zzz"})

    def test_select(self):
        out = select(R, lambda t: t["a"] > 1)
        assert len(out) == 2

    def test_select_keeps_schema(self):
        assert select(R, lambda t: False).schema == R.schema

    def test_rename(self):
        out = rename(R, {"a": "alpha"})
        assert out.schema == frozenset({"alpha", "b"})

    def test_rename_collision(self):
        with pytest.raises(RelationError):
            rename(R, {"a": "b"})


class TestJoin:
    def test_natural_join_matches(self):
        out = natural_join(R, S)
        assert Tuple({"a": 1, "b": 10, "c": "x"}) in out.tuples
        assert len(out) == 3  # (1,10,x),(3,10,x),(2,20,y)

    def test_join_dangling_dropped(self):
        out = natural_join(R, S)
        assert all(t["b"] != 30 for t in out.tuples)

    def test_join_disjoint_is_product(self):
        t = Relation.from_rows(["z"], [[1], [2]])
        out = natural_join(R, t)
        assert len(out) == len(R) * 2

    def test_join_all_unit(self):
        empty_join = join_all([])
        assert len(empty_join) == 1 and empty_join.schema == frozenset()

    def test_join_all_associativity(self):
        one = join_all([R, S])
        other = natural_join(S, R)
        assert one == other

    def test_join_commutative(self):
        assert natural_join(R, S) == natural_join(S, R)

    def test_join_idempotent(self):
        assert natural_join(R, R) == R


class TestSetOps:
    def test_union(self):
        extra = Relation.from_rows(["a", "b"], [[9, 90]])
        assert len(union(R, extra)) == 4

    def test_difference(self):
        assert len(difference(R, R)) == 0

    def test_intersection(self):
        sub = Relation.from_rows(["a", "b"], [[1, 10]])
        assert intersection(R, sub) == sub

    def test_schema_mismatch_raises(self):
        with pytest.raises(RelationError):
            union(R, S)

    def test_cartesian_requires_disjoint(self):
        with pytest.raises(RelationError):
            cartesian_product(R, R)


class TestDivisionSemijoin:
    def test_division(self):
        enrolled = Relation.from_rows(
            ["student", "course"],
            [["ann", "db"], ["ann", "os"], ["bob", "db"]],
        )
        courses = Relation.from_rows(["course"], [["db"], ["os"]])
        out = division(enrolled, courses)
        assert out == Relation.from_rows(["student"], [["ann"]])

    def test_division_schema_check(self):
        with pytest.raises(RelationError):
            division(R, S)

    def test_semijoin(self):
        out = semijoin(R, S)
        assert len(out) == 3  # all R rows have partners (b=10,20)
        smaller = semijoin(R, Relation.from_rows(["b", "c"], [[10, "x"]]))
        assert len(smaller) == 2


class TestLosslessness:
    def test_lossless_split(self):
        r = Relation.from_rows(["a", "b", "c"], [[1, 10, "x"], [2, 20, "y"]])
        assert is_lossless_decomposition(r, [{"a", "b"}, {"b", "c"}])

    def test_lossy_split_detected(self):
        r = Relation.from_rows(["a", "b", "c"],
                               [[1, 10, "x"], [2, 10, "y"]])
        # b does not determine either side; the join manufactures tuples.
        assert not is_lossless_decomposition(r, [{"a", "b"}, {"b", "c"}])

    def test_cover_check(self):
        with pytest.raises(RelationError):
            is_lossless_decomposition(R, [{"a"}])
