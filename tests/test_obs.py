"""Observability: instruments, tracing, and telemetry over the wire.

Four layers under test.  The instruments themselves (``repro.obs``)
must be exact — bucket boundaries, conservative percentiles, counters
that survive 8 threads hammering them (an increment dropped under
concurrency would silently undercount forever).  The commit pipeline
must time its phases and gate the slow-commit log on an injectable
clock, so the gating is a pure function of fake time.  The wire must
serve it all: the ``metrics`` op returns the registry snapshot plus
slow commits and traces, ``status`` responses of both roles round-trip
through :func:`validate_status`, and the thin-view properties keep the
pre-registry attribute names readable.  Finally, observability must
survive promotion: a replica's engine keeps its instruments when it
becomes the primary.
"""

from __future__ import annotations

import threading
from math import isclose

import pytest

from repro.errors import ProtocolError
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
)
from repro.server import (
    ClientPool,
    ReadBalancer,
    ReplicaEngine,
    StoreClient,
    StoreServer,
    promote,
    status_payload,
    validate_status,
)
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads import manager_stream, serving_state


def _mk_engine(n=30, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _commit_rows(engine, rows):
    session = SessionService(engine).session("main")
    return [session.commit(session.begin().insert("manager", row))
            for row in rows]


class FakeClock:
    """Advances a fixed step per call — commit phase timings become a
    pure function of how many timestamps the pipeline takes."""

    def __init__(self, step=0.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestHistogram:
    def test_empty_percentiles_are_none(self):
        h = Histogram("h")
        assert h.percentile(50) is None
        summary = h.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["max"] is None

    def test_single_observation_pins_every_percentile(self):
        h = Histogram("h")
        h.observe(0.0003)
        # 0.0003 lands in the 500us bucket; every percentile reports
        # that bucket's upper bound.
        for q in (1, 50, 95, 99, 100):
            assert h.percentile(q) == 500e-6
        assert h.summary()["min"] == h.summary()["max"] == 0.0003

    def test_boundary_value_lands_in_its_own_bucket(self):
        """An observation exactly at a bound belongs to that bucket,
        not the next one up."""
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)
        assert h.percentile(50) == 2.0

    def test_overflow_reports_the_observed_maximum(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(17.5)
        # Past the last bound the percentile is the exact observed max,
        # not a clamped bound.
        assert h.percentile(99) == 17.5
        assert h.summary()["max"] == 17.5

    def test_percentiles_are_conservative_upper_bounds(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            h.observe(value)
        # Ranks: p50 -> 2nd sample (bucket 1.0), p75 -> 3rd (2.0),
        # p100 -> 4th (4.0).
        assert h.percentile(50) == 1.0
        assert h.percentile(75) == 2.0
        assert h.percentile(100) == 4.0
        assert isclose(h.summary()["sum"], 5.6)

    def test_default_buckets_are_sorted_and_span_the_gate(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert DEFAULT_BUCKETS[0] <= 50e-6   # resolves the commit gate
        assert DEFAULT_BUCKETS[-1] >= 1.0    # covers fsync stalls

    def test_rejects_empty_bucket_ladder(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_snapshot_is_json_shaped_and_sorted(self):
        r = MetricsRegistry()
        r.counter("z").inc(3)
        r.counter("a").inc()
        r.gauge("lvl").set(2.5)
        r.histogram("lat").observe(0.001)
        snap = r.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 3
        assert snap["gauges"]["lvl"] == 2.5
        assert snap["histograms"]["lat"]["count"] == 1

    def test_eight_threads_against_a_serial_oracle(self):
        """8 threads x 5000 updates per instrument; the totals must be
        *exact* — a single dropped increment fails this."""
        r = MetricsRegistry()
        c, g, h = r.counter("c"), r.gauge("g"), r.histogram("h")
        threads, per = 8, 5000

        def hammer():
            for i in range(per):
                c.inc()
                g.inc(2.0)
                h.observe((i % 7) * 1e-4)

        workers = [threading.Thread(target=hammer)
                   for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert c.value == threads * per
        assert g.value == 2.0 * threads * per
        assert h.count == threads * per
        oracle = sum((i % 7) * 1e-4 for i in range(per)) * threads
        assert isclose(h.summary()["sum"], oracle)


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_only_roots_reach_the_ring(self):
        t = Tracer()
        with t.span("outer", op="x"):
            with t.span("inner"):
                pass
        (trace,) = t.recent()
        assert trace["name"] == "outer"
        assert trace["tags"] == {"op": "x"}
        (child,) = trace["spans"]
        assert child["name"] == "inner"
        assert child["spans"] == []
        assert len(t) == 1  # the child folded into its parent

    def test_ring_evicts_oldest_first(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.event(f"e{i}")
        assert [x["name"] for x in t.recent()] == ["e2", "e3", "e4"]

    def test_slowest_sorts_and_filters_by_prefix(self):
        t = Tracer()
        t.record({"name": "a.fast", "duration": 0.01, "start": 0,
                  "end": 0.01, "tags": {}, "spans": []})
        t.record({"name": "a.slow", "duration": 0.5, "start": 0,
                  "end": 0.5, "tags": {}, "spans": []})
        t.record({"name": "b.other", "duration": 1.0, "start": 0,
                  "end": 1.0, "tags": {}, "spans": []})
        assert [x["name"] for x in t.slowest(2)] == ["b.other", "a.slow"]
        assert [x["name"] for x in t.slowest(5, prefix="a.")] \
            == ["a.slow", "a.fast"]

    def test_threads_nest_independently(self):
        """The span stack is thread-local: a span opened on one thread
        never adopts another thread's spans as children."""
        t = Tracer()
        barrier = threading.Barrier(2)

        def trace(name):
            with t.span(name):
                barrier.wait(timeout=5)
                barrier.wait(timeout=5)

        a = threading.Thread(target=trace, args=("a",))
        b = threading.Thread(target=trace, args=("b",))
        a.start(), b.start()
        a.join(), b.join()
        traces = t.recent()
        assert sorted(x["name"] for x in traces) == ["a", "b"]
        assert all(x["spans"] == [] for x in traces)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x", a=1) as span:
            assert span.tags == {}
        NULL_TRACER.event("e")
        NULL_TRACER.record({"name": "r"})
        assert NULL_TRACER.recent() == []
        assert NULL_TRACER.slowest() == []
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled


# ----------------------------------------------------------------------
# the commit pipeline
# ----------------------------------------------------------------------
class TestCommitObservability:
    def test_detached_engine_records_nothing(self):
        engine = _mk_engine()
        _commit_rows(engine, manager_stream(30, 2))
        assert engine.metrics is None
        assert engine.tracer is NULL_TRACER
        assert list(engine.slow_commits) == []

    def test_phase_histograms_count_every_commit(self, tmp_path):
        engine = _mk_engine(wal=str(tmp_path / "w.log"))
        registry = MetricsRegistry()
        engine.attach_observability(registry)
        _commit_rows(engine, manager_stream(30, 3))
        snap = registry.snapshot()
        for phase in ("rebase", "validate", "derive", "wal_append",
                      "total"):
            assert snap["histograms"][
                f"store.commit.{phase}_seconds"]["count"] == 3, phase
        assert snap["counters"]["store.commits"] == 3
        assert snap["counters"]["store.wal.appends"] == 3
        assert snap["counters"]["store.wal.appended_bytes"] > 0
        engine.close()

    def test_commit_traces_carry_phase_children(self):
        engine = _mk_engine()
        registry, tracer = MetricsRegistry(), Tracer()
        engine.attach_observability(registry, tracer)
        _commit_rows(engine, manager_stream(30, 1))
        commits = [t for t in tracer.recent()
                   if t["name"] == "store.commit"]
        assert len(commits) == 1
        names = [s["name"] for s in commits[0]["spans"]]
        assert names == ["commit.rebase", "commit.validate",
                         "commit.derive", "commit.wal_append"]
        assert commits[0]["tags"]["groups"] >= 1

    def test_slow_commit_gating_is_a_function_of_the_clock(self):
        """Six timestamps per commit at 0.05s/call = 0.25s total: over
        a 0.1s threshold every commit is slow; over a 1.0s threshold
        none is.  Same commits, same clock — only the gate differs."""
        rows = manager_stream(30, 2)
        for threshold, expect_slow in ((0.1, 2), (1.0, 0)):
            engine = _mk_engine()
            registry = MetricsRegistry(clock=FakeClock(step=0.05))
            engine.attach_observability(
                registry, slow_commit_threshold=threshold)
            _commit_rows(engine, rows)
            assert len(engine.slow_commits) == expect_slow, threshold
            assert registry.snapshot()["counters"][
                "store.slow_commits"] == expect_slow

    def test_slow_commit_record_shape(self):
        engine = _mk_engine()
        registry = MetricsRegistry(clock=FakeClock(step=0.05))
        engine.attach_observability(registry, slow_commit_threshold=0.01)
        _commit_rows(engine, manager_stream(30, 1))
        (record,) = engine.slow_commits
        assert set(record) == {"version", "at", "total", "phases",
                               "group_count", "groups"}
        assert set(record["phases"]) == {"rebase", "validate", "derive",
                                         "wal_append", "fsync"}
        assert record["group_count"] == len(record["groups"]) >= 1
        # Groups are JSON-flattened (relation, sorted attrs, row repr).
        relation, attrs, row = record["groups"][0]
        assert isinstance(relation, str)
        assert attrs == sorted(attrs)
        assert isinstance(row, str)

    def test_slow_commit_log_is_bounded(self):
        engine = _mk_engine(n=60)
        registry = MetricsRegistry(clock=FakeClock(step=0.05))
        engine.attach_observability(registry, slow_commit_threshold=0.01,
                                    slow_commit_capacity=4)
        _commit_rows(engine, manager_stream(60, 7))
        assert len(engine.slow_commits) == 4
        assert registry.snapshot()["counters"]["store.slow_commits"] == 7

    def test_detach_restores_the_zero_cost_path(self, tmp_path):
        engine = _mk_engine(wal=str(tmp_path / "w.log"))
        registry = MetricsRegistry()
        engine.attach_observability(registry, slow_commit_threshold=0.1)
        engine.attach_observability(None)
        assert engine.metrics is None
        assert engine.wal.probe is None
        _commit_rows(engine, manager_stream(30, 1))
        assert registry.snapshot()["counters"]["store.commits"] == 0
        engine.close()


# ----------------------------------------------------------------------
# the status schema
# ----------------------------------------------------------------------
class TestStatusSchema:
    def test_payload_helper_builds_a_valid_core(self):
        body = status_payload(role="primary", epoch=2, ready=True,
                              counters={"x": 1}, seq=5, versions=3,
                              branches={"main": "v3"}, extra="kept")
        assert validate_status(body) is body
        assert body["extra"] == "kept"

    @pytest.mark.parametrize("mutation, message", [
        ({"role": "observer"}, "role"),
        ({"epoch": -1}, "epoch"),
        ({"epoch": "2"}, "epoch"),
        ({"ready": 1}, "ready"),
        ({"counters": [1]}, "counters"),
        ({"counters": {"x": True}}, "x"),
        ({"counters": {"x": "1"}}, "x"),
    ])
    def test_core_violations_raise(self, mutation, message):
        body = status_payload(role="replica", epoch=0, ready=False,
                              counters={})
        body.update(mutation)
        with pytest.raises(ProtocolError, match=message):
            validate_status(body)

    def test_missing_core_key_raises(self):
        body = status_payload(role="primary", epoch=0, ready=False)
        del body["counters"]
        with pytest.raises(ProtocolError, match="counters"):
            validate_status(body)

    def test_ready_status_requires_graph_shape(self):
        body = status_payload(role="primary", epoch=0, ready=True,
                              seq=1, versions=1)
        with pytest.raises(ProtocolError, match="branches"):
            validate_status(body)


# ----------------------------------------------------------------------
# over the wire
# ----------------------------------------------------------------------
class TestMetricsOverTheWire:
    def test_metrics_op_serves_the_snapshot(self, tmp_path):
        engine = _mk_engine(wal=str(tmp_path / "w.log"))
        rows = manager_stream(30, 3)
        with StoreServer(engine) as server:
            with StoreClient(*server.address) as client:
                for row in rows:
                    client.run([{"op": "insert", "relation": "manager",
                                 "row": row}])
                payload = client.metrics(traces=2)
        metrics = payload["metrics"]
        assert metrics["counters"]["server.commits"] == 3
        assert metrics["counters"]["store.commits"] == 3
        assert metrics["counters"]["server.ops.commit"] == 3
        assert metrics["counters"]["kernel.sweep.runs"] >= 1
        assert metrics["histograms"][
            "store.commit.total_seconds"]["count"] == 3
        assert metrics["gauges"]["server.connections"] == 1
        assert payload["slow_commits"] == []
        assert len(payload["traces"]) == 2
        engine.close()

    def test_metrics_op_rejects_bad_traces_field(self):
        engine = _mk_engine()
        with StoreServer(engine) as server:
            with StoreClient(*server.address) as client:
                for bad in (-1, True, "five", 1.5):
                    with pytest.raises(ProtocolError):
                        client.request("metrics", traces=bad)

    def test_both_roles_validate_and_report_counters(self, tmp_path):
        wal = str(tmp_path / "w.log")
        engine = _mk_engine(wal=wal)
        _commit_rows(engine, manager_stream(30, 2))
        replica = ReplicaEngine(wal, from_checkpoint=False)
        with StoreServer(engine) as primary_server, \
                StoreServer(replica) as replica_server:
            # Sync after the server attached its registry, so the
            # applied records count into it.
            replica.sync()
            with StoreClient(*primary_server.address) as client:
                primary_status = client.status()
            with StoreClient(*replica_server.address) as client:
                replica_status = client.status()
                replica_metrics = client.metrics()
        validate_status(primary_status)
        validate_status(replica_status)
        assert primary_status["role"] == "primary"
        assert replica_status["role"] == "replica"
        assert replica_status["counters"]["replica.syncs"] >= 1
        assert replica_status["behind_bytes"] == 0  # extras survive
        assert replica_metrics["metrics"]["counters"][
            "replica.applied_records"] >= 2
        replica.close()
        engine.close()

    def test_promoted_replica_keeps_serving_metrics(self, tmp_path):
        """The metrics op works across a promotion: the replica's
        server reports replica counters; the successor server over the
        promoted engine reports commit histograms for post-failover
        writes."""
        wal = str(tmp_path / "w.log")
        engine = _mk_engine(wal=wal)
        rows = manager_stream(30, 4)
        _commit_rows(engine, rows[:2])
        engine.close()  # the primary dies

        replica = ReplicaEngine(wal, from_checkpoint=False)
        with StoreServer(replica) as replica_server:
            with StoreClient(*replica_server.address) as client:
                before = client.metrics()["metrics"]
            assert before["counters"]["replica.syncs"] >= 1
        promoted = promote(replica)
        with StoreServer(promoted) as successor:
            with StoreClient(*successor.address) as client:
                client.run([{"op": "insert", "relation": "manager",
                             "row": rows[2]}])
                after = client.metrics()
                status = client.status()
        validate_status(status)
        assert status["role"] == "primary"
        assert status["epoch"] == 1
        assert after["metrics"]["counters"]["store.commits"] == 1
        assert after["metrics"]["histograms"][
            "store.commit.total_seconds"]["count"] == 1
        promoted.wal.close()
        replica.close()


# ----------------------------------------------------------------------
# thin views over the registry
# ----------------------------------------------------------------------
class TestThinViews:
    def test_server_attributes_read_through_the_registry(self):
        engine = _mk_engine()
        with StoreServer(engine) as server:
            with StoreClient(*server.address) as client:
                client.ping()
                assert server._connections == 1
                assert server._frames_served >= 2
            assert server._commits == 0
            assert server._bad_frames == 0
            assert server.metrics.snapshot()["counters"][
                "server.frames_served"] == server._frames_served

    def test_balancer_counters_are_registry_backed(self):
        balancer = ReadBalancer({"r1": ("127.0.0.1", 1)},
                                seed=3)
        assert balancer.reads == {"r1": 0}
        assert balancer.fallbacks == {"primary": 0, "stale": 0}
        assert balancer.ejections == 0
        balancer.add_replica("r2", ("127.0.0.1", 2))
        assert balancer.reads == {"r1": 0, "r2": 0}
        snap = balancer.metrics.snapshot()["counters"]
        assert snap["balancer.reads.r2"] == 0
        assert snap["balancer.ejections"] == 0
        balancer.close()

    def test_pool_eviction_counter_is_registry_backed(self):
        engine = _mk_engine()
        with StoreServer(engine) as server:
            with ClientPool(*server.address, size=1) as pool:
                with pool.acquire() as client:
                    assert client.ping()
                assert pool.evicted == 0
                snap = pool.metrics.snapshot()["counters"]
                assert snap["pool.dials"] == 1
                assert snap["pool.evicted"] == 0
