"""Randomized equivalence: the instance kernel vs. the naive oracles.

PR 1's pattern applied to the instance-level predicates: every check
routed through :class:`repro.kernel.InstanceKernel` keeps its original
implementation as a ``*_naive`` reference oracle, and these suites drive
both routes with ~200 seeded random cases per property (drawn from the
shared :mod:`generators` harness) plus the degenerate corners — empty
relation, single tuple, ``lhs = universe``, ``rhs subseteq lhs`` — and
assert exact agreement.
"""

from __future__ import annotations

import random

from generators import (
    lossless_instance,
    lossy_case,
    random_cover,
    random_instance_fd,
    random_jd,
    random_mvd,
    random_relation,
)
from repro.core.domain_constraints import fd_extension_holds_naive
from repro.kernel import InstanceKernel
from repro.relational import FD, MVD, Relation
from repro.relational.algebra import (
    is_lossless_decomposition,
    is_lossless_decomposition_naive,
    natural_join,
    natural_join_naive,
    project,
    project_naive,
)
from repro.relational.fd import holds_in as fd_holds_in
from repro.relational.fd import holds_in_naive as fd_holds_in_naive
from repro.relational.jd import JoinDependency
from repro.relational.jd import holds_in as jd_holds_in
from repro.relational.jd import holds_in_naive as jd_holds_in_naive
from repro.relational.mvd import holds_in as mvd_holds_in
from repro.relational.mvd import holds_in_naive as mvd_holds_in_naive

CASES = 200


def _attrs(rng: random.Random, lo: int = 1, hi: int = 5) -> list[str]:
    return [f"a{i}" for i in range(rng.randint(lo, hi))]


class TestFDHoldsEquivalence:
    def test_holds_in_matches_naive(self):
        rng = random.Random(0xF1)
        verdicts = set()
        for case in range(CASES):
            attrs = _attrs(rng)
            rel = random_relation(rng, attrs)
            fd = random_instance_fd(rng, attrs)
            verdict = fd_holds_in(fd, rel)
            assert verdict == fd_holds_in_naive(fd, rel), (case, fd)
            verdicts.add(verdict)
        assert verdicts == {True, False}  # the sample is not one-sided

    def test_degenerate_cases(self):
        rng = random.Random(0xF2)
        for case in range(60):
            attrs = _attrs(rng, lo=2)
            cases = [
                (random_instance_fd(rng, attrs), Relation(attrs)),  # empty
                (random_instance_fd(rng, attrs),
                 random_relation(rng, attrs, max_rows=1)),  # single tuple
                (FD(attrs, rng.sample(attrs, 1)),
                 random_relation(rng, attrs)),  # lhs = universe
            ]
            lhs = rng.sample(attrs, rng.randint(1, len(attrs)))
            rhs = rng.sample(lhs, rng.randint(1, len(lhs)))
            cases.append((FD(lhs, rhs), random_relation(rng, attrs)))  # rhs <= lhs
            for fd, rel in cases:
                assert fd_holds_in(fd, rel) == fd_holds_in_naive(fd, rel), \
                    (case, fd, rel)

    def test_interning_is_reused_across_checks(self):
        rng = random.Random(0xF3)
        attrs = _attrs(rng, lo=3)
        rel = random_relation(rng, attrs, max_rows=12)
        inst = InstanceKernel.of(rel)
        assert InstanceKernel.of(rel) is inst
        fd = random_instance_fd(rng, attrs)
        assert fd_holds_in(fd, rel) == fd_holds_in_naive(fd, rel)
        # The lhs partition built by the check is cached on the instance.
        assert inst.indices_of(fd.lhs) in inst._partitions


class TestMVDHoldsEquivalence:
    def test_holds_in_matches_naive(self):
        rng = random.Random(0xF4)
        verdicts = set()
        for case in range(CASES):
            attrs = _attrs(rng)
            rel = random_relation(rng, attrs)
            mvd = random_mvd(rng, attrs)
            verdict = mvd_holds_in(mvd, rel)
            assert verdict == mvd_holds_in_naive(mvd, rel), (case, mvd)
            verdicts.add(verdict)
        assert verdicts == {True, False}

    def test_degenerate_cases(self):
        rng = random.Random(0xF5)
        for case in range(60):
            attrs = _attrs(rng, lo=2)
            lhs = rng.sample(attrs, rng.randint(1, len(attrs)))
            cases = [
                (random_mvd(rng, attrs), Relation(attrs)),  # empty relation
                (random_mvd(rng, attrs),
                 random_relation(rng, attrs, max_rows=1)),  # single tuple
                (MVD(attrs, rng.sample(attrs, 1), attrs),
                 random_relation(rng, attrs)),  # lhs = universe
                (MVD(lhs, rng.sample(lhs, rng.randint(0, len(lhs))), attrs),
                 random_relation(rng, attrs)),  # rhs <= lhs (trivial)
            ]
            for mvd, rel in cases:
                assert mvd_holds_in(mvd, rel) == mvd_holds_in_naive(mvd, rel), \
                    (case, mvd, rel)


class TestJDHoldsEquivalence:
    def test_holds_in_matches_naive(self):
        rng = random.Random(0xF6)
        verdicts = set()
        for case in range(CASES):
            attrs = _attrs(rng)
            rel = random_relation(rng, attrs)
            jd = random_jd(rng, attrs)
            verdict = jd_holds_in(jd, rel)
            assert verdict == jd_holds_in_naive(jd, rel), (case, jd)
            verdicts.add(verdict)
        assert verdicts == {True, False}

    def test_degenerate_cases(self):
        rng = random.Random(0xF7)
        for case in range(60):
            attrs = _attrs(rng, lo=1)
            cases = [
                (random_jd(rng, attrs), Relation(attrs)),  # empty relation
                (random_jd(rng, attrs),
                 random_relation(rng, attrs, max_rows=1)),  # single tuple
                (JoinDependency([attrs], attrs),
                 random_relation(rng, attrs)),  # whole-universe component
            ]
            for jd, rel in cases:
                assert jd_holds_in(jd, rel) == jd_holds_in_naive(jd, rel), \
                    (case, jd, rel)


class TestProjectJoinEquivalence:
    def test_project_matches_naive(self):
        rng = random.Random(0xF8)
        for case in range(CASES):
            attrs = _attrs(rng)
            rel = random_relation(rng, attrs)
            wanted = rng.sample(attrs, rng.randint(0, len(attrs)))
            assert project(rel, wanted) == project_naive(rel, wanted), case

    def test_natural_join_matches_naive(self):
        rng = random.Random(0xF9)
        for case in range(CASES):
            # Overlapping, nested, equal, and disjoint schema pairs all
            # occur: attributes are drawn from one small pool.
            pool = [f"a{i}" for i in range(rng.randint(2, 6))]
            left_attrs = rng.sample(pool, rng.randint(1, len(pool)))
            right_attrs = rng.sample(pool, rng.randint(1, len(pool)))
            left = random_relation(rng, left_attrs)
            right = random_relation(rng, right_attrs)
            fast = natural_join(left, right)
            slow = natural_join_naive(left, right)
            assert fast == slow, (case, left, right)

    def test_join_of_projections_matches_naive_pipeline(self):
        rng = random.Random(0xFA)
        for case in range(100):
            attrs = _attrs(rng, lo=2)
            rel = random_relation(rng, attrs)
            parts = random_cover(rng, attrs)
            fast = parts and natural_join(project(rel, parts[0]),
                                          project(rel, parts[-1]))
            slow = parts and natural_join_naive(project_naive(rel, parts[0]),
                                                project_naive(rel, parts[-1]))
            assert fast == slow, case


class TestLosslessDecompositionEquivalence:
    def test_matches_naive_on_random_covers(self):
        rng = random.Random(0xFB)
        verdicts = set()
        for case in range(CASES):
            attrs = _attrs(rng)
            rel = random_relation(rng, attrs)
            parts = random_cover(rng, attrs)
            verdict = is_lossless_decomposition(rel, parts)
            assert verdict == is_lossless_decomposition_naive(rel, parts), \
                (case, parts)
            verdicts.add(verdict)
        assert verdicts == {True, False}

    def test_known_lossless_instances(self):
        rng = random.Random(0xFC)
        for case in range(80):
            attrs = _attrs(rng, lo=2)
            parts = random_cover(rng, attrs)
            rel = lossless_instance(rng, attrs, parts)
            assert is_lossless_decomposition(rel, parts), case
            assert is_lossless_decomposition_naive(rel, parts), case

    def test_known_lossy_instances(self):
        rng = random.Random(0xFD)
        for case in range(40):
            rel, parts = lossy_case(rng, n_rows=rng.randint(2, 5))
            assert not is_lossless_decomposition(rel, parts), case
            assert not is_lossless_decomposition_naive(rel, parts), case

    def test_degenerate_cases(self):
        rng = random.Random(0xFE)
        for case in range(40):
            attrs = _attrs(rng, lo=1)
            parts = random_cover(rng, attrs)
            for rel in (Relation(attrs), random_relation(rng, attrs, max_rows=1)):
                assert is_lossless_decomposition(rel, parts) == \
                    is_lossless_decomposition_naive(rel, parts), case
        # Zero-ary relations against the empty decomposition.
        for rel in (Relation(()), Relation((), [{}])):
            assert is_lossless_decomposition(rel, []) == \
                is_lossless_decomposition_naive(rel, [])


class TestDomainConstraintExtensionChecks:
    def test_fd_domain_constraint_predicate_matches_naive(self):
        """The kernel-routed predicate inside ``fd_domain_constraint``
        agrees with the retained witness-dict oracle on the employee
        state and on random perturbations of it."""
        from repro.core.domain_constraints import fd_domain_constraint
        from repro.core.employee import employee_extension, employee_schema
        from repro.core.fd import EntityFD, holds_naive

        schema = employee_schema()
        db = employee_extension(schema)
        rng = random.Random(0xFF)
        names = sorted(e.name for e in schema)
        pairs = [(e, f, h)
                 for h in names for e in names for f in names]
        rng.shuffle(pairs)
        checked = 0
        for e, f, h in pairs:
            fd = EntityFD(schema[e], schema[f], schema[h])
            try:
                constraint = fd_domain_constraint(schema, fd)
            except Exception:
                continue  # ill-typed triple — not a legal entity FD
            checked += 1
            assert constraint.holds(db) == \
                fd_extension_holds_naive(fd, db.R(fd.context))
            assert constraint.holds(db) == holds_naive(fd, db)
        assert checked >= 10
