"""Unit tests for repro.topology.generation (the section 3.1 construction)."""

import pytest

from repro.topology import (
    FiniteSpace,
    intersections_of,
    is_base_for,
    is_subbase_for,
    irredundant_subbases,
    minimal_base,
    redundant_in_subbase,
    topology_from_base,
    topology_from_subbase,
    unions_of,
)


class TestIntersections:
    def test_contains_carrier(self):
        fam = intersections_of([{"a"}, {"b"}], "abc")
        assert frozenset("abc") in fam

    def test_pairwise_intersections_present(self):
        fam = intersections_of([{"a", "b"}, {"b", "c"}], "abc")
        assert frozenset({"b"}) in fam

    def test_closed_under_intersection(self):
        fam = intersections_of([{"a", "b"}, {"b", "c"}, {"a", "c"}], "abc")
        members = list(fam)
        for x in members:
            for y in members:
                assert x & y in fam


class TestUnions:
    def test_contains_empty(self):
        assert frozenset() in unions_of([{"a"}])

    def test_closed_under_union(self):
        fam = unions_of([{"a"}, {"b"}, {"c"}])
        members = list(fam)
        for x in members:
            for y in members:
                assert x | y in fam


class TestTopologyFromSubbase:
    def test_sierpinski_from_singleton(self):
        space = topology_from_subbase("ab", [{"a"}])
        assert space.opens == frozenset(
            {frozenset(), frozenset({"a"}), frozenset({"a", "b"})}
        )

    def test_subbase_members_open(self):
        subbase = [{"a", "b"}, {"b", "c"}]
        space = topology_from_subbase("abcd", subbase)
        for member in subbase:
            assert space.is_open(member)

    def test_coarsest_property(self):
        # The generated topology must be contained in any topology where
        # the subbase members are open — check against the discrete one.
        space = topology_from_subbase("abc", [{"a"}, {"b"}])
        discrete = FiniteSpace.discrete("abc")
        assert space.opens <= discrete.opens

    def test_empty_subbase_gives_indiscrete(self):
        space = topology_from_subbase("abc", [])
        assert space.opens == frozenset({frozenset(), frozenset("abc")})


class TestBasePredicates:
    def test_minimal_base_generates(self):
        space = topology_from_subbase("abcd", [{"a", "b"}, {"b", "c"}, {"d"}])
        base = minimal_base(space)
        assert is_base_for(base, space)

    def test_base_detection_rejects_nonbase(self):
        space = topology_from_subbase("abc", [{"a"}, {"b"}])
        assert not is_base_for([{"a"}], space)

    def test_subbase_detection(self):
        space = topology_from_subbase("abc", [{"a", "b"}, {"b", "c"}])
        assert is_subbase_for([{"a", "b"}, {"b", "c"}], space)
        assert not is_subbase_for([{"a", "b"}], space)

    def test_topology_from_base_roundtrip(self):
        space = topology_from_subbase("abcd", [{"a", "b"}, {"b", "c"}])
        rebuilt = topology_from_base(space.points, minimal_base(space))
        assert rebuilt.opens == space.opens


class TestRedundancy:
    def test_redundant_member_found(self):
        # {b} = {a,b} & {b,c} is derivable, so it is redundant.
        subbase = [{"a", "b"}, {"b", "c"}, {"b"}]
        redundant = redundant_in_subbase("abc", subbase)
        assert frozenset({"b"}) in redundant

    def test_essential_member_kept(self):
        subbase = [{"a", "b"}, {"b", "c"}]
        assert not redundant_in_subbase("abc", subbase)

    @pytest.mark.slow
    def test_irredundant_subbases_minimal(self):
        subbase = [{"a", "b"}, {"b", "c"}, {"b"}]
        answers = irredundant_subbases("abc", subbase)
        assert frozenset({frozenset({"a", "b"}), frozenset({"b", "c"})}) in answers
        for answer in answers:
            for other in answers:
                assert not (other < answer)

    @pytest.mark.slow
    def test_irredundant_subbases_limit(self):
        subbase = [{"a"}, {"b"}, {"c"}, {"a", "b"}, {"b", "c"}]
        answers = irredundant_subbases("abc", subbase, limit=1)
        assert len(answers) == 1
