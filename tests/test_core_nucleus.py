"""Unit tests for dependency mappings: N_e, F_e, DF_e (section 5.3)."""

import pytest

from repro.core import (
    DependencyMappings,
    fd_pairs,
    in_DF,
    in_F,
    is_transitively_closed,
    nucleus,
    transitive_closure,
)
from repro.errors import DependencyError


class TestNucleus:
    def test_nucleus_is_trivial_pairs(self, schema):
        n = nucleus(schema, schema["manager"])
        names = {(x.name, y.name) for x, y in n}
        assert ("manager", "employee") in names
        assert ("manager", "person") in names
        assert ("employee", "person") in names
        assert ("person", "employee") not in names

    def test_nucleus_reflexive(self, schema):
        n = nucleus(schema, schema["worksfor"])
        for e in ("person", "employee", "department", "worksfor"):
            assert (schema[e], schema[e]) in n

    def test_nucleus_transitively_closed(self, schema):
        for e in schema:
            assert is_transitively_closed(nucleus(schema, e))


class TestClosureOps:
    def test_transitive_closure(self, schema):
        a, b, c = schema["manager"], schema["employee"], schema["person"]
        closed = transitive_closure({(a, b), (b, c)})
        assert (a, c) in closed

    def test_idempotent(self, schema):
        a, b = schema["manager"], schema["employee"]
        once = transitive_closure({(a, b)})
        assert transitive_closure(once) == once


class TestFAndDF:
    def test_nucleus_in_F(self, schema):
        e = schema["manager"]
        assert in_F(schema, e, nucleus(schema, e))

    def test_smaller_sets_not_in_F(self, schema):
        e = schema["manager"]
        assert not in_F(schema, e, frozenset())

    def test_pairs_outside_G_rejected(self, schema):
        e = schema["person"]
        alien_pair = {(schema["manager"], schema["manager"])}
        assert not in_F(schema, e, nucleus(schema, e) | alien_pair)

    def test_DF_requires_transitivity(self, schema):
        e = schema["worksfor"]
        base = nucleus(schema, e)
        extra = base | {(schema["person"], schema["employee"])}
        # adding person->employee: transitive closure may add more pairs.
        if not is_transitively_closed(extra):
            assert not in_DF(schema, e, extra)
        assert in_DF(schema, e, transitive_closure(extra))


class TestSemanticPairs:
    def test_fd_pairs_contains_nucleus(self, db, schema):
        for e in schema:
            assert nucleus(schema, e) <= fd_pairs(db, e)

    def test_fd_pairs_in_DF(self, db, schema):
        """The semantically valid pair set is always a DF_e member."""
        for e in schema:
            assert in_DF(schema, e, fd_pairs(db, e))

    def test_worksfor_fd_visible(self, db, schema):
        pairs = fd_pairs(db, schema["worksfor"])
        assert (schema["employee"], schema["department"]) in pairs


class TestMappings:
    def test_F_restricts_to_G_e(self, db, schema):
        dm = DependencyMappings(db, schema["person"])
        f_set = dm.F(schema["manager"])
        g_person = {schema["person"]}
        for x, y in f_set:
            assert x in g_person and y in g_person

    def test_F_requires_specialisation(self, db, schema):
        dm = DependencyMappings(db, schema["manager"])
        with pytest.raises(DependencyError):
            dm.F(schema["department"])

    def test_pF_is_inclusion(self, db, schema):
        dm = DependencyMappings(db, schema["employee"])
        mapping = dm.pF(schema["employee"], schema["manager"])
        for source, target in mapping.items():
            assert source == target

    def test_pF_respects_propagation(self, db, schema):
        """F_e(f) subset F_e(g) for g in S_f — the propagation theorem in
        pair-set form."""
        dm = DependencyMappings(db, schema["person"])
        upper = dm.F(schema["employee"])
        lower = dm.F(schema["manager"])
        assert upper <= lower

    def test_corollary(self, db, schema):
        dm = DependencyMappings(db, schema["person"])
        assert dm.corollary_holds(schema["employee"], schema["manager"])

    def test_syntactic_source(self, db, schema, worksfor_fd):
        from repro.core import ArmstrongEngine

        engine = ArmstrongEngine(schema, [worksfor_fd])

        def source(f):
            return frozenset(
                (fd.determinant, fd.dependent)
                for fd in engine.derived_in_context(f)
            )

        dm = DependencyMappings(db, schema["employee"], fd_source=source)
        f_set = dm.F(schema["manager"])
        assert (schema["employee"], schema["person"]) in f_set
