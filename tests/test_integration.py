"""Cross-module integration scenarios: design -> populate -> constrain ->
evolve, and the baseline comparisons."""

import random

import pytest

from repro.core import (
    AddEntityType,
    ArmstrongEngine,
    ConstraintSet,
    DatabaseExtension,
    DesignDraft,
    DraftEntity,
    EntityFD,
    EntityViewType,
    FunctionalConstraint,
    SpecialisationStructure,
    ViewUpdate,
    analyse,
    check_all,
    run_design_process,
)
from repro.relational import Tuple


class TestDesignToDatabaseLifecycle:
    """A full lifecycle on a second domain: a university database."""

    @pytest.fixture
    def university(self):
        draft = DesignDraft(
            domains={
                "sname": ["sue", "tom", "una"],
                "year": [1, 2, 3],
                "cname": ["db", "os", "ai"],
                "credits": [5, 10],
                "grade": [6, 7, 8, 9],
            },
            entities=[
                DraftEntity("student", frozenset({"sname", "year"})),
                DraftEntity("course", frozenset({"cname", "credits"})),
                DraftEntity(
                    "enrolled",
                    frozenset({"sname", "year", "cname", "credits", "grade"}),
                    is_relationship=True,
                    claimed_contributors=frozenset({"student", "course"}),
                ),
            ],
        )
        report = run_design_process(draft)
        assert report.schema is not None
        return report.schema

    def test_design_produces_valid_schema(self, university):
        assert check_all(university).ok()

    def test_topology_structure(self, university):
        spec = SpecialisationStructure(university)
        assert {e.name for e in spec.roots()} == {"student", "course"}
        assert {e.name for e in spec.leaves()} == {"enrolled"}

    def test_populate_and_constrain(self, university):
        db = DatabaseExtension(university, {
            "student": [{"sname": "sue", "year": 2}, {"sname": "tom", "year": 1}],
            "course": [{"cname": "db", "credits": 10}],
            "enrolled": [
                {"sname": "sue", "year": 2, "cname": "db", "credits": 10, "grade": 8},
            ],
        })
        assert db.is_consistent()
        fd = EntityFD(university["student"], university["course"],
                      university["enrolled"])
        constraints = ConstraintSet(university, [FunctionalConstraint(fd)])
        assert constraints.holds(db)

    def test_view_update_cycle(self, university):
        db = DatabaseExtension(university, {
            "student": [{"sname": "sue", "year": 2}],
            "course": [{"cname": "db", "credits": 10}],
        })
        view = EntityViewType("catalogue", {university["course"]})
        update = ViewUpdate(view, "insert", university["course"],
                            Tuple({"cname": "os", "credits": 5}))
        updated = update.translate(db)
        assert len(updated.R("course")) == 2
        assert updated.is_consistent()

    def test_evolution_roundtrip(self, university):
        db = DatabaseExtension(university, {
            "student": [{"sname": "sue", "year": 2}],
        })
        report = analyse(db, AddEntityType(
            "honours", frozenset({"sname", "year", "grade"}),
        ))
        assert report.information_preserved
        assert report.intension_embeds
        assert report.migrated is not None
        assert report.migrated.R("honours").schema == frozenset(
            {"sname", "year", "grade"}
        )


class TestArmstrongOverConstraints:
    def test_cardinalities_feed_the_engine(self, schema, db, constraints):
        """Constraint-declared FDs drive derivations that hold in the state."""
        from repro.core.fd import holds

        premises = constraints.functional_dependencies()
        engine = ArmstrongEngine(schema, premises)
        for fd in engine.closure():
            assert holds(fd, db), fd


class TestBaselineComparison:
    def test_ur_ambiguity_vs_view_axiom(self, db, schema):
        """E12's core claim in one test: UR >= 2 translations, axiom model 1."""
        from repro.core import translation_count
        from repro.universal import UniversalRelation, insertion_translations

        ur = UniversalRelation.from_extension(db)
        ur_count = len(insertion_translations(ur, {"name": "eva", "age": 47}))
        view = EntityViewType("people", {schema["person"]})
        update = ViewUpdate(view, "insert", schema["person"],
                            Tuple({"name": "eva", "age": 47}))
        axiom_count = translation_count(update, db)
        assert axiom_count == 1
        assert ur_count > axiom_count

    def test_ear_translation_validates(self, db):
        """EAR -> axiom model -> axiom checks, end to end."""
        from repro.ear import employee_ear_schema, translate

        result = translate(employee_ear_schema())
        report = check_all(result.schema,
                           constraints=result.constraints.constraints,
                           contributors=result.contributors)
        assert report.ok()


class TestFailureInjectionPipeline:
    def test_detect_and_repair(self, rng, schema):
        """Inject a violation, detect it with the axiom checkers, repair it
        with the deletion fixpoint, and verify the final state."""
        from repro.workloads import (
            enforce_extension_axiom,
            inject_injectivity_violation,
            random_extension,
        )

        db = random_extension(rng, schema, rows_per_leaf=3)
        broken = inject_injectivity_violation(rng, db)
        report = check_all(schema, broken)
        assert not report.ok()
        repaired = enforce_extension_axiom(broken)
        assert check_all(schema, repaired).ok()


class TestScaleSmoke:
    def test_mid_size_schema_pipeline(self):
        """30 types / 12 attributes: the structures stay responsive."""
        from repro.workloads import random_extension, random_schema

        rng = random.Random(99)
        schema = random_schema(rng, n_attrs=12, n_types=30, shape="tree")
        spec = SpecialisationStructure(schema)
        assert spec.cross_check()
        db = random_extension(rng, schema, rows_per_leaf=2)
        assert db.is_consistent()
