"""The fault-injection harness: seeded determinism, WAL crash shapes,
and the frame-aware chaos proxy.

Every failure in this suite is *scheduled* by a :class:`FaultPlan`
seed, never by timing: a failing run is replayed by re-running the same
seed (assertions carry it, and the CI chaos lane prints it)."""

from __future__ import annotations

import time
import warnings

import pytest

from repro.errors import ProtocolError, TornTailWarning
from repro.faults import (
    ChaosProxy,
    FaultPlan,
    FaultyWal,
    InjectedCrash,
    InjectedFault,
)
from repro.io import encode_frame, split_frames
from repro.server import StoreClient, StoreServer
from repro.store import SessionService, StoreEngine, WriteAheadLog
from repro.workloads import manager_stream, serving_state

from generators import chaos_seeds


def _mk_engine(n=30, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


def _commit_rows(engine, rows):
    session = SessionService(engine).session("main")
    return [session.commit(session.begin().insert("manager", row))
            for row in rows]


# ----------------------------------------------------------------------
# split_frames (the proxy's byte layer)
# ----------------------------------------------------------------------
class TestSplitFrames:
    def test_splits_at_boundaries_without_decoding(self):
        f1 = encode_frame({"op": "ping", "id": 1})
        f2 = encode_frame({"op": "status", "id": 2})
        frames, rest = split_frames(f1 + f2)
        assert frames == [f1, f2] and rest == b""

    def test_partial_tail_is_remainder(self):
        f1 = encode_frame({"op": "ping"})
        f2 = encode_frame({"op": "status"})
        blob = f1 + f2
        for cut in range(len(f1) + 1, len(blob)):
            frames, rest = split_frames(blob[:cut])
            assert frames == [f1]
            assert rest == blob[len(f1):cut]

    def test_partial_header_is_remainder(self):
        f1 = encode_frame({"op": "ping"})
        frames, rest = split_frames(f1[:3])
        assert frames == [] and rest == f1[:3]

    def test_bytes_pass_through_untouched(self):
        f1 = encode_frame({"op": "commit", "txn": "t1", "id": 9})
        frames, _ = split_frames(f1)
        assert frames[0] == f1  # header included, payload verbatim


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_fires_identically(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan(seed=42, rates={"x": 0.25})
            draws.append([bool(plan.fire("x")) for _ in range(200)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, rates={"x": 0.25})
        b = FaultPlan(seed=2, rates={"x": 0.25})
        assert [bool(a.fire("x")) for _ in range(200)] \
            != [bool(b.fire("x")) for _ in range(200)]

    def test_trips_fire_at_exact_indices_with_payloads(self):
        plan = FaultPlan(seed=0, trips={"t": {3: "payload"}, "u": [0, 2]})
        fired = [plan.fire("t") for _ in range(5)]
        assert [bool(e) for e in fired] == [False] * 3 + [True, False]
        assert fired[3]["payload"] == "payload" and fired[3]["index"] == 3
        assert [bool(plan.fire("u")) for _ in range(3)] \
            == [True, False, True]

    def test_zero_rate_site_never_fires(self):
        plan = FaultPlan(seed=0, rates={"x": 0.0})
        assert not any(plan.fire("x") for _ in range(100))
        assert not plan.configured("x")
        assert plan.configured("y") is False

    def test_event_log_records_firings(self):
        plan = FaultPlan(seed=0, trips={"a": [1], "b": {0: 7}})
        plan.fire("a"), plan.fire("b"), plan.fire("a")
        assert [(e["site"], e["index"], e["payload"])
                for e in plan.events] == [("b", 0, 7), ("a", 1, None)]
        recipe = plan.describe()
        assert recipe["seed"] == 0 and len(recipe["fired"]) == 2

    def test_counters_are_per_site(self):
        plan = FaultPlan(seed=0, trips={"a": [1], "b": [1]})
        assert not plan.fire("a") and not plan.fire("b")
        assert plan.fire("a") and plan.fire("b")


# ----------------------------------------------------------------------
# the WAL wrapper
# ----------------------------------------------------------------------
class TestFaultyWal:
    def test_torn_write_leaves_durable_partial_line(self, tmp_path):
        wal = FaultyWal(WriteAheadLog(tmp_path / "w.jsonl"),
                        FaultPlan(seed=1, trips={"wal.torn": {2: 7}}))
        wal.append({"type": "commit", "n": 0})
        wal.append({"type": "commit", "n": 1})
        with pytest.raises(InjectedCrash):
            wal.append({"type": "commit", "n": 2})
        # The torn bytes are fsynced: power loss does not remove them.
        assert wal.simulate_power_loss() == {}
        data = (tmp_path / "w.jsonl").read_bytes()
        assert len(data.split(b"\n")[-1]) == 7  # the 7-byte cut
        with pytest.warns(TornTailWarning):
            records = list(WriteAheadLog.records(tmp_path / "w.jsonl"))
        assert [r["n"] for r in records] == [0, 1]

    def test_short_write_vanishes_on_power_loss(self, tmp_path):
        wal = FaultyWal(WriteAheadLog(tmp_path / "w.jsonl"),
                        FaultPlan(seed=1, trips={"wal.short": {1: 9}}))
        wal.append({"type": "commit", "n": 0})
        with pytest.raises(InjectedCrash):
            wal.append({"type": "commit", "n": 1})
        dropped = wal.simulate_power_loss()
        assert sum(dropped.values()) == 9
        records = list(WriteAheadLog.records(tmp_path / "w.jsonl"))
        assert [r["n"] for r in records] == [0]  # clean prefix, no tear

    def test_fsync_loss_erases_an_acknowledged_append(self, tmp_path):
        wal = FaultyWal(WriteAheadLog(tmp_path / "w.jsonl"),
                        FaultPlan(seed=1, trips={"wal.fsync_loss": [1]}))
        wal.append({"type": "commit", "n": 0})
        wal.append({"type": "commit", "n": 1})  # acked, never durable
        # Readable now — but a power cut erases the acked record whole.
        assert [r["n"] for r in
                WriteAheadLog.records(tmp_path / "w.jsonl")] == [0, 1]
        dropped = wal.simulate_power_loss()
        assert sum(dropped.values()) > 0
        assert [r["n"] for r in
                WriteAheadLog.records(tmp_path / "w.jsonl")] == [0]

    def test_later_durable_append_recovers_lost_fsync(self, tmp_path):
        """The watermark is a high-water mark on file bytes: a durable
        append after a dropped fsync re-covers the earlier record."""
        wal = FaultyWal(WriteAheadLog(tmp_path / "w.jsonl"),
                        FaultPlan(seed=1, trips={"wal.fsync_loss": [1]}))
        for n in range(3):
            wal.append({"type": "commit", "n": n})
        assert wal.simulate_power_loss() == {}
        assert [r["n"] for r in
                WriteAheadLog.records(tmp_path / "w.jsonl")] == [0, 1, 2]

    def test_io_error_is_transient_and_retryable(self, tmp_path):
        wal = FaultyWal(WriteAheadLog(tmp_path / "w.jsonl"),
                        FaultPlan(seed=1, trips={"wal.io_error": [1]}))
        wal.append({"type": "commit", "n": 0})
        with pytest.raises(InjectedFault) as caught:
            wal.append({"type": "commit", "n": 1})
        assert isinstance(caught.value, OSError)  # classified retryable
        wal.append({"type": "commit", "n": 1})  # the retry goes through
        records = list(WriteAheadLog.records(tmp_path / "w.jsonl"))
        assert [r["n"] for r in records] == [0, 1]  # nothing half-written

    def test_random_cut_is_seed_deterministic(self, tmp_path):
        tails = []
        for run in range(2):
            path = tmp_path / f"w{run}.jsonl"
            wal = FaultyWal(WriteAheadLog(path),
                            FaultPlan(seed=33, trips={"wal.torn": [0]}))
            with pytest.raises(InjectedCrash):
                wal.append({"type": "commit", "n": 0})
            tails.append(path.read_bytes())
        assert tails[0] == tails[1]

    def test_engine_commit_through_faulty_wal(self, tmp_path):
        """The wrapper is a drop-in for the engine's WAL: a scheduled
        crash mid-commit leaves a torn tail that replay forgives."""
        engine = _mk_engine(n=30, wal=tmp_path / "w.jsonl")
        engine.wal = FaultyWal(engine.wal,
                               FaultPlan(seed=5, trips={"wal.torn": {2: 11}}))
        rows = manager_stream(30, 3)
        _commit_rows(engine, rows[:2])
        with pytest.raises(InjectedCrash):
            _commit_rows(engine, rows[2:])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TornTailWarning)
            replayed = StoreEngine.replay(tmp_path / "w.jsonl")
        assert len(replayed.graph) == 3  # snapshot + 2 durable commits
        assert replayed.state() == engine.state(replayed.head_version().vid)

    def test_segmented_log_watermarks_are_per_file(self, tmp_path):
        path = tmp_path / "seg"
        wal = FaultyWal(WriteAheadLog(path, segment_records=2),
                        FaultPlan(seed=1, trips={"wal.fsync_loss": [3]}))
        for n in range(4):
            wal.append({"type": "commit", "n": n})
        dropped = wal.simulate_power_loss()
        assert len(dropped) == 1  # only the final segment lost bytes
        survivors = [r["n"] for r in WriteAheadLog.records(path)]
        assert survivors == [0, 1, 2]


# ----------------------------------------------------------------------
# the network proxy
# ----------------------------------------------------------------------
@pytest.fixture
def server():
    engine = _mk_engine(n=30)
    with StoreServer(engine) as srv:
        yield srv
    engine.close()


class TestChaosProxy:
    def test_clean_plan_is_a_transparent_relay(self, server):
        with ChaosProxy(server.address, FaultPlan(seed=0)) as proxy:
            with StoreClient(*proxy.address) as client:
                assert client.ping()
                row = manager_stream(30, 1)[0]
                result = client.run([{"op": "insert",
                                      "relation": "manager", "row": row}])
                assert result["version"]
                assert row in client.read("manager")

    def test_dropped_frame_starves_the_caller(self, server):
        plan = FaultPlan(seed=0, trips={"net.drop": [0]})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=0.3,
                             hello=False) as client:
                with pytest.raises((ProtocolError, OSError)):
                    client.ping()
        assert plan.events and plan.events[0]["site"] == "net.drop"

    def test_delayed_frame_arrives_late_but_intact(self, server):
        plan = FaultPlan(seed=0, trips={"net.delay": {0: 0.25}})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, hello=False) as client:
                start = time.monotonic()
                assert client.ping()
                assert time.monotonic() - start >= 0.2

    def test_truncated_frame_kills_the_connection(self, server):
        plan = FaultPlan(seed=0, trips={"net.truncate": {0: 3}})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=1.0,
                             hello=False) as client:
                with pytest.raises((ProtocolError, OSError)):
                    client.ping()

    def test_disconnect_closes_both_sides(self, server):
        plan = FaultPlan(seed=0, trips={"net.disconnect": [0]})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=1.0,
                             hello=False) as client:
                with pytest.raises((ProtocolError, OSError)):
                    client.ping()

    def test_disconnect_mid_commit_loses_the_ack_not_the_commit(
            self, server):
        """The ambiguous failure: the server applies the commit, the
        client never hears back."""
        engine = server.engine
        plan = FaultPlan(seed=0, trips={"net.commit_disconnect": [0]})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=2.0) as client:
                before = engine.graph.seq
                row = manager_stream(30, 2)[1]
                with pytest.raises((ProtocolError, OSError)):
                    client.run([{"op": "insert", "relation": "manager",
                                 "row": row}])
        deadline = time.monotonic() + 5.0
        while engine.graph.seq == before:
            assert time.monotonic() < deadline, plan.describe()
            time.sleep(0.01)
        assert row in [t.as_dict()
                       for t in engine.head_version().state.R("manager")]

    def test_non_commit_frames_pass_while_commit_cut_is_armed(
            self, server):
        plan = FaultPlan(seed=0, trips={"net.commit_disconnect": [0]})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address) as client:
                assert client.ping()  # op inspection spares non-commits
                assert client.status()["role"] == "primary"

    def test_duplicated_frame_desyncs_the_stream_detectably(
            self, server):
        """A duplicated request produces a duplicate response the
        client never asked for — the next request sees the stale id
        and fails typed, never silently."""
        plan = FaultPlan(seed=0, trips={"net.duplicate": [0]})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=1.0,
                             hello=False) as client:
                assert client.ping()  # first response matches
                with pytest.raises(ProtocolError):
                    client.ping()  # the duplicate's stale id surfaces
        assert plan.describe()["fired"][0]["site"] == "net.duplicate"

    def test_reordered_frames_swap_but_none_are_lost(self, server):
        """The held frame rides behind the next one: two pipelined
        pings come back answered in swapped order, both answered."""
        plan = FaultPlan(seed=0, trips={"net.reorder": [0]})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=2.0,
                             hello=False) as client:
                client.send_message({"id": 1, "op": "ping"})
                client.send_message({"id": 2, "op": "ping"})
                first = client.recv_message()
                second = client.recv_message()
        assert [first["id"], second["id"]] == [2, 1], plan.describe()
        assert first["pong"] and second["pong"]

    def test_partition_starves_probes_then_heals(self, server):
        """A partitioned link eats frames without closing — exactly
        what a heartbeat prober sees — and traffic flows again after
        heal()."""
        with ChaosProxy(server.address, FaultPlan(seed=0)) as proxy:
            with StoreClient(*proxy.address, timeout=0.3,
                             hello=False) as client:
                proxy.partition()
                with pytest.raises((ProtocolError, OSError)):
                    client.ping()
                proxy.heal()
                assert client.ping()

    def test_partition_trip_fires_from_the_plan(self, server):
        plan = FaultPlan(seed=0, trips={"net.partition": {0: 0.2}})
        with ChaosProxy(server.address, plan) as proxy:
            with StoreClient(*proxy.address, timeout=0.4,
                             hello=False) as client:
                start = time.monotonic()
                with pytest.raises((ProtocolError, OSError)):
                    client.ping()  # this frame starts (and feeds) it
                while time.monotonic() - start < 0.25:
                    time.sleep(0.01)  # wait out the timed partition
                assert client.ping()
        fired = plan.describe()["fired"]
        assert any(e["site"] == "net.partition" for e in fired)

    def test_pause_delays_frames_without_losing_any(self, server):
        """A paused relay is a SIGSTOP'd peer: the frame arrives late,
        not never."""
        with ChaosProxy(server.address, FaultPlan(seed=0)) as proxy:
            with StoreClient(*proxy.address, timeout=2.0,
                             hello=False) as client:
                proxy.pause(0.3)
                start = time.monotonic()
                assert client.ping()
                assert time.monotonic() - start >= 0.25


@pytest.mark.slow
class TestChaosSweep:
    """Seeded probabilistic sweeps — each assertion carries the seed
    (and the plan recipe) needed to replay it."""

    def test_lossy_transport_never_corrupts_the_store(self):
        """Under dropped frames and disconnects, a client either gets
        a typed error or a real ack — and every acked commit is in the
        graph.  25 seeds."""
        engine = _mk_engine(n=60)
        rows = manager_stream(60, 30)
        with StoreServer(engine) as server:
            acked = []
            for i, seed in enumerate(chaos_seeds(25)):
                plan = FaultPlan(seed=seed, rates={
                    "net.drop": 0.08, "net.disconnect": 0.05,
                    "net.commit_disconnect": 0.10})
                with ChaosProxy(server.address, plan) as proxy:
                    client = None
                    try:
                        client = StoreClient(*proxy.address, timeout=0.5)
                        result = client.run(
                            [{"op": "insert", "relation": "manager",
                              "row": rows[i]}])
                        acked.append((seed, rows[i],
                                      result["version"]))
                    except (ProtocolError, OSError):
                        pass  # typed transport failure: fine
                    finally:
                        if client is not None:
                            client.close()
            head = [t.as_dict()
                    for t in engine.head_version().state.R("manager")]
            try:
                for seed, row, vid in acked:
                    assert row in head, (
                        f"acked commit lost: seed={seed} version={vid}")
            except BaseException:
                # The seed replays the failure; the server's own
                # registry says what it actually served while the
                # proxy was mangling traffic.
                import json

                print("\nserver metrics at failure:")
                print(json.dumps(server.metrics.snapshot(), indent=2,
                                 sort_keys=True))
                raise
        engine.close()
