"""Unit tests for the Alexandrov correspondence (repro.topology.order)."""

import pytest

from repro.topology import (
    FiniteSpace,
    alexandrov_space,
    hasse_edges,
    is_preorder,
    specialisation_preorder,
    t0_quotient,
    topological_sort,
    topology_from_subbase,
)


def chain_space():
    """a <= b <= c (minimal opens: {a}, {a,b}, {a,b,c})."""
    return topology_from_subbase("abc", [{"a"}, {"a", "b"}])


class TestSpecialisationPreorder:
    def test_chain_order(self):
        up = specialisation_preorder(chain_space())
        assert up["a"] == frozenset("abc")
        assert up["b"] == frozenset("bc")
        assert up["c"] == frozenset("c")

    def test_discrete_order_is_identity(self):
        up = specialisation_preorder(FiniteSpace.discrete("ab"))
        assert up["a"] == frozenset("a")
        assert up["b"] == frozenset("b")

    def test_is_preorder_accepts(self):
        up = specialisation_preorder(chain_space())
        assert is_preorder("abc", up)

    def test_is_preorder_rejects_irreflexive(self):
        assert not is_preorder("ab", {"a": {"b"}, "b": {"b"}})

    def test_is_preorder_rejects_nontransitive(self):
        assert not is_preorder(
            "abc", {"a": {"a", "b"}, "b": {"b", "c"}, "c": {"c"}}
        )


class TestAlexandrovRoundtrip:
    def test_space_to_order_to_space(self):
        space = chain_space()
        up = specialisation_preorder(space)
        rebuilt = alexandrov_space(space.points, up)
        assert rebuilt.opens == space.opens

    def test_order_to_space_to_order(self):
        up = {"x": {"x", "y"}, "y": {"y"}, "z": {"z"}}
        space = alexandrov_space("xyz", up)
        recovered = specialisation_preorder(space)
        assert recovered == {
            "x": frozenset({"x", "y"}),
            "y": frozenset({"y"}),
            "z": frozenset({"z"}),
        }

    def test_employee_roundtrip(self):
        from repro.core.employee import employee_schema
        from repro.core.specialisation import SpecialisationStructure

        spec = SpecialisationStructure(employee_schema())
        space = spec.space
        up = specialisation_preorder(space)
        assert alexandrov_space(space.points, up).opens == space.opens


class TestHasse:
    def test_chain_hasse(self):
        up = {"a": {"a", "b", "c"}, "b": {"b", "c"}, "c": {"c"}}
        assert hasse_edges("abc", up) == frozenset({("a", "b"), ("b", "c")})

    def test_diamond_hasse_skips_transitive_edge(self):
        up = {
            "bottom": {"bottom", "l", "r", "top"},
            "l": {"l", "top"},
            "r": {"r", "top"},
            "top": {"top"},
        }
        edges = hasse_edges(up.keys(), up)
        assert ("bottom", "top") not in edges
        assert ("bottom", "l") in edges and ("bottom", "r") in edges


class TestTopologicalSort:
    def test_respects_order(self):
        up = {"a": {"a", "b"}, "b": {"b"}, "c": {"c"}}
        order = topological_sort("abc", up)
        assert order.index("a") < order.index("b")

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            topological_sort("ab", {"a": {"a", "b"}, "b": {"b", "a"}})

    def test_deterministic(self):
        up = {"a": {"a"}, "b": {"b"}, "c": {"c"}}
        assert topological_sort("abc", up) == topological_sort("cba", up)


class TestT0Quotient:
    def test_identifies_duplicate_points(self):
        # b and c are indistinguishable (same minimal open).
        space = FiniteSpace(
            "abc",
            [set(), {"a"}, {"a", "b", "c"}],
        )
        quotient, blocks = t0_quotient(space)
        assert blocks["b"] == blocks["c"] == frozenset({"b", "c"})
        assert len(quotient) == 2

    def test_t0_space_unchanged_in_size(self):
        space = chain_space()
        quotient, _ = t0_quotient(space)
        assert len(quotient) == len(space)
