"""Every checkable claim of the paper, one test per claim.

This is the reproduction's contract: each test cites the section and the
sentence it validates.  EXPERIMENTS.md indexes these as experiments
E1-E12.
"""

import random

import pytest

from repro.core import (
    ArmstrongEngine,
    DependencyMappings,
    EntityFD,
    GeneralisationStructure,
    SpecialisationStructure,
    SubbaseChoice,
    agreement_report,
    canonical_contributors,
    fd_pairs,
    gluing_report,
    holds,
    in_DF,
    instance_presheaf,
    lambda_mapping,
    minimal_subbase_choices,
    nucleus,
    propagates_to,
    semantically_implies,
    triangle_commutes,
    verify_corollary,
)
from repro.core.employee import (
    PAPER_CONSTRUCTED,
    PAPER_CONTRIBUTORS,
    PAPER_G_SETS,
    PAPER_S_SETS,
    PAPER_SUBBASE,
)
from repro.workloads import random_extension, random_premises, random_schema


class TestSection2Axioms:
    def test_entity_table_is_valid_schema(self, schema):
        """The employee table satisfies the Attribute and Entity Type
        axioms (construction succeeds)."""
        assert len(schema) == 5

    def test_relationship_is_entity_type(self, schema):
        """Relationship Axiom: worksfor is an ordinary entity type."""
        assert schema["worksfor"].attributes == frozenset(
            {"name", "age", "depname", "location"}
        )

    def test_manager_subset_dependency(self, db):
        """'each manager should be an employee' as subset hierarchy."""
        assert db.pi("manager", "employee").is_subset_of(db.R("employee"))


class TestSection31Specialisation:
    def test_S_sets_match(self, schema):
        spec = SpecialisationStructure(schema)
        for name, expected in PAPER_S_SETS.items():
            assert {e.name for e in spec.S(schema[name])} == set(expected)

    def test_S_is_minimal_element_of_L(self, schema):
        """'for any W in L, with e as a member, [S_e] is a subset of W'."""
        assert SpecialisationStructure(schema).minimality_holds()

    def test_isa_strictness(self, schema):
        """'if y in S_x and y != x then the Entity Type Axiom forces
        x not in S_y'."""
        assert SpecialisationStructure(schema).entity_type_axiom_forces_strictness()

    def test_S_is_open_cover_and_subbase(self, schema):
        """'S = {S_e} forms an open cover of E ... the subbase of a
        topology T'."""
        spec = SpecialisationStructure(schema)
        assert spec.is_open_cover()
        from repro.topology import is_subbase_for

        assert is_subbase_for(spec.subbase(), spec.space)

    def test_chosen_subbase_R_T(self, schema):
        """'R_T = {person, department, employee, manager}; worksfor is the
        only constructed element'."""
        choice = SubbaseChoice(schema, PAPER_SUBBASE)
        assert {e.name for e in choice.constructed_types()} == set(PAPER_CONSTRUCTED)
        only = minimal_subbase_choices(schema)
        assert len(only) == 1 and {e.name for e in only[0]} == set(PAPER_SUBBASE)


class TestSection32Generalisation:
    def test_G_sets_match(self, schema):
        gen = GeneralisationStructure(schema)
        for name, expected in PAPER_G_SETS.items():
            assert {e.name for e in gen.G(schema[name])} == set(expected)

    def test_G_strictness(self, schema):
        """'let y in G_x and y != x then G_y proper subset G_x'."""
        assert GeneralisationStructure(schema).strictness_holds()

    def test_not_complements_counterexample(self, schema):
        """'S_person union G_person != E and S_person intersect G_person =
        person'."""
        witness = GeneralisationStructure(schema).not_complement_witness(
            schema["person"]
        )
        assert not witness["union_is_E"]
        assert witness["intersection_is_singleton"]

    def test_duality_corollary(self, schema):
        """'For all x, y in E: y in S_x iff x in G_y'."""
        assert GeneralisationStructure(schema).duality_corollary_holds()

    def test_G_is_open_cover(self, schema):
        """'the generalisation sets G_e form an open cover of E as well'."""
        assert GeneralisationStructure(schema).is_open_cover()


class TestSection33Contributors:
    def test_CO_values(self, schema):
        """CO_worksfor = {employee, department}, CO_manager = {employee}."""
        for name, expected in PAPER_CONTRIBUTORS.items():
            cos = {c.name for c in canonical_contributors(schema, schema[name])}
            assert cos == set(expected)

    def test_contributors_satisfy_property(self, schema):
        """'If f in CO_e, then f in G_e and f != e'."""
        gen = GeneralisationStructure(schema)
        for e in schema:
            for f in canonical_contributors(schema, e):
                assert f in gen.G(e) and f != e


class TestSection4Extension:
    def test_containment_condition(self, db):
        """'pi_e^s(R_s) subseteq R_e' for the example state."""
        assert db.satisfies_containment()

    def test_extension_axiom_injectivity(self, db):
        """'an employee can be a manager in at most one way'."""
        assert db.satisfies_extension_axiom("manager")
        broken = db.replace("manager", db.R("manager").with_tuples([
            {"name": "ann", "age": 31, "depname": "sales", "budget": 500},
        ]))
        assert not broken.satisfies_extension_axiom("manager")

    def test_corollary_abc(self, db):
        """Section 4.2's corollary (a), (b), (c) on every chain."""
        assert verify_corollary(db) == {"a": True, "b": True, "c": True}

    def test_extension_is_presheaf_and_glues(self, db):
        """Section 6: the E_e / rho family is a presheaf; the consistent
        example state satisfies the gluing condition over the S_e cover."""
        assert instance_presheaf(db).is_presheaf()
        assert gluing_report(db)["is_sheaf_on_E"]


class TestSection51FD:
    def test_fd_definition(self, db, worksfor_fd):
        assert holds(worksfor_fd, db)

    def test_triangle_theorem_both_directions(self, db, worksfor_fd):
        """'fd(e,f,g) iff exists lambda: E_e(g) -> E_f(g) such that the
        triangle commutes'."""
        lam = lambda_mapping(worksfor_fd, db)
        assert lam is not None and triangle_commutes(worksfor_fd, db, lam)
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        assert lambda_mapping(worksfor_fd, broken) is None


class TestSection52Armstrong:
    def test_axiom1(self, schema):
        """'g in G_e implies fd(e, g, e)'."""
        engine = ArmstrongEngine(schema, [])
        gen = GeneralisationStructure(schema)
        for e in schema:
            for g in gen.G(e):
                assert engine.derivable(EntityFD(e, g, e))

    def test_axiom2_soundness_needs_extension_axiom(self):
        """'Note that 2 is sound because of the Extension Axiom.'"""
        from repro.core import a2_union_soundness_example

        schema, premises, derived = a2_union_soundness_example()
        assert semantically_implies(schema, premises, derived,
                                    with_extension_axiom=True)
        assert not semantically_implies(schema, premises, derived,
                                        with_extension_axiom=False)

    def test_axiom3_transitivity(self, schema):
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["employee"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(schema, [p1, p2])
        assert engine.derivable(
            EntityFD(schema["person"], schema["department"], schema["worksfor"])
        )

    def test_propagation_theorem(self, schema):
        """'let h in S_g then fd(e,f,h) also holds' — verified semantically
        on random consistent states."""
        for seed in range(5):
            rng = random.Random(seed)
            rschema = random_schema(rng, shape="tree", n_attrs=6, n_types=5)
            db = random_extension(rng, rschema, rows_per_leaf=2)
            from repro.workloads import random_fd

            fd = random_fd(rng, rschema)
            if fd is None or not holds(fd, db):
                continue
            for propagated, verdict in propagates_to(fd, db):
                assert verdict, (seed, propagated)

    def test_global_soundness(self, schema):
        """Soundness half of the main theorem, exhaustively on the
        employee schema with random premises."""
        for seed in range(8):
            premises = random_premises(random.Random(seed), schema, count=3)
            report = agreement_report(schema, premises)
            assert not report["sound_violations"]

    def test_global_completeness_on_closed_schemas(self):
        """Completeness half: exact agreement on intersection-closed
        schemas (the reproduction's precise reading — see EXPERIMENTS.md
        E10 for the open-schema counterexample)."""
        from repro.core import is_intersection_closed
        from repro.workloads import intersection_close

        for seed in range(6):
            rng = random.Random(seed)
            schema = random_schema(rng, n_attrs=5, n_types=4,
                                   shape=rng.choice(["chain", "tree", "diamond"]))
            closed = intersection_close(schema)
            assert is_intersection_closed(closed)
            premises = random_premises(rng, closed, count=2)
            report = agreement_report(closed, premises)
            assert report["agreement_rate"] == 1.0, seed

    def test_completeness_gap_documented(self):
        """The reproduction finding: the literal rule system is incomplete
        on schemas that are not intersection-closed."""
        from repro.core import completeness_gap_example

        schema, premises, candidate = completeness_gap_example()
        engine = ArmstrongEngine(schema, premises)
        assert semantically_implies(schema, premises, candidate)
        assert not engine.derivable(candidate)


class TestSection53DependencyMappings:
    def test_nucleus_holds_always(self, db, schema):
        """'N_e: those fds that should always hold in G_e'."""
        for e in schema:
            for x, y in nucleus(schema, e):
                assert holds(EntityFD(x, y, e), db)

    def test_fd_sets_live_in_DF(self, db, schema):
        """The semantic dependency set of any context is a DF_e member."""
        for e in schema:
            assert in_DF(schema, e, fd_pairs(db, e))

    def test_propagation_as_pair_inclusion(self, db, schema):
        """'the propagation theorem tells us that fd_e subseteq fd_f for
        f in S_e' (viewed inside G_e x G_e)."""
        dm = DependencyMappings(db, schema["person"])
        assert dm.F(schema["employee"]) <= dm.F(schema["manager"])

    def test_mapping_corollary(self, db, schema):
        """Section 5.3's corollary on the employee chain."""
        dm = DependencyMappings(db, schema["person"])
        assert dm.corollary_holds(schema["employee"], schema["manager"])


class TestSection6DomainConstraints:
    def test_mvd_is_a_special_case_of_domain_constraint(self):
        """Section 6: 'It can be shown that multi-valued dependencies are
        a special case of domain constraints.'  On random consistent
        states, the relational swap semantics of ``MVD.holds_in``, the
        entity-level check, and the domain-constraint closure formulation
        of :mod:`repro.core.domain_constraints` give one verdict — and
        the retained naive swap oracle agrees with all three."""
        from repro.core.domain_constraints import (
            EntityMVD,
            holds as entity_mvd_holds,
            mvd_domain_constraint,
        )
        from repro.relational.mvd import holds_in, holds_in_naive

        seen = set()
        for seed in range(6):
            rng = random.Random(seed)
            rschema = random_schema(rng, shape=rng.choice(["chain", "tree"]),
                                    n_attrs=6, n_types=5)
            db = random_extension(rng, rschema, rows_per_leaf=3)
            gen = GeneralisationStructure(rschema)
            for h in sorted(rschema):
                g_h = sorted(gen.G(h))
                if len(g_h) < 2:
                    continue
                for _ in range(4):
                    emvd = EntityMVD(rng.choice(g_h), rng.choice(g_h), h)
                    constraint = mvd_domain_constraint(rschema, emvd)
                    relational = emvd.as_relational()
                    state = db.R(h)
                    verdict = holds_in(relational, state)
                    assert verdict == holds_in_naive(relational, state)
                    assert verdict == entity_mvd_holds(emvd, db)
                    assert verdict == constraint.holds(db)
                    if not verdict:
                        assert constraint.violation_report(db)
                    seen.add(verdict)
        assert True in seen  # trivial/nucleus MVDs guarantee positives
