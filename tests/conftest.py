"""Shared fixtures: the paper's employee example and seeded generators."""

from __future__ import annotations

import random

import pytest

from repro.core.employee import (
    employee_constraints,
    employee_extension,
    employee_fd,
    employee_schema,
)


@pytest.fixture
def schema():
    """The paper's employee schema (section 2)."""
    return employee_schema()


@pytest.fixture
def db(schema):
    """A small consistent extension of the employee schema."""
    return employee_extension(schema)


@pytest.fixture
def constraints(schema):
    """The paper-named constraints for the employee schema."""
    return employee_constraints(schema)


@pytest.fixture
def worksfor_fd(schema):
    """fd(employee, department, worksfor)."""
    return employee_fd(schema)


@pytest.fixture
def rng():
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC5_87_11)
