"""Unit tests for pi/rho mappings and the extension presheaf (section 4.2 / 6)."""

import pytest

from repro.core import (
    all_chains,
    corollary_a,
    corollary_b,
    corollary_c,
    gluing_report,
    instance_presheaf,
    rho,
    verify_corollary,
)
from repro.errors import ExtensionError


class TestRho:
    def test_rho_is_inclusion(self, db, schema):
        h, f, e = schema["manager"], schema["employee"], schema["person"]
        mapping = rho(db, h, f, e)
        for source, target in mapping.items():
            assert source == target

    def test_rho_requires_chain(self, db, schema):
        with pytest.raises(ExtensionError):
            rho(db, schema["person"], schema["employee"], schema["manager"])

    def test_rho_undefined_on_containment_violation(self, db, schema):
        broken = db.insert(
            "manager",
            {"name": "eva", "age": 47, "depname": "admin", "budget": 100},
            propagate=False,
        )
        with pytest.raises(ExtensionError):
            rho(broken, schema["manager"], schema["employee"], schema["person"])


class TestCorollary:
    def test_individual_chain(self, db, schema):
        chain = (schema["manager"], schema["employee"], schema["person"])
        assert corollary_a(db, *chain)
        assert corollary_b(db, *chain)
        assert corollary_c(db, *chain)

    def test_all_chains_enumerated(self, db):
        chains = all_chains(db)
        # Reflexive chains (e,e,e) are included for every type.
        assert len(chains) >= len(db.schema)
        for h, f, e in chains:
            assert f.attributes <= h.attributes
            assert e.attributes <= f.attributes

    def test_verify_corollary_all_true(self, db):
        assert verify_corollary(db) == {"a": True, "b": True, "c": True}


class TestInstancePresheaf:
    def test_functor_laws(self, db):
        presheaf = instance_presheaf(db)
        assert presheaf.is_presheaf()

    def test_sections_over_minimal_open(self, db, schema):
        """Sections over S_manager are manager instances with their
        projections — one per manager tuple."""
        presheaf = instance_presheaf(db)
        s_manager = db.spec.S(schema["manager"])
        assert len(presheaf.sections[s_manager]) == len(db.R("manager"))

    def test_empty_open_single_section(self, db):
        presheaf = instance_presheaf(db)
        assert presheaf.sections[frozenset()] == frozenset({frozenset()})

    def test_consistent_state_glues(self, db):
        report = gluing_report(db)
        assert report["is_sheaf_on_E"], report["failures"]

    def test_restriction_forgets_components(self, db, schema):
        presheaf = instance_presheaf(db)
        s_mgr = db.spec.S(schema["manager"])
        bigger = db.spec.S(schema["employee"])
        section = next(iter(presheaf.sections[bigger]))
        restricted = presheaf.restrict(bigger, s_mgr, section)
        names_in = {name for name, _ in restricted}
        assert names_in <= {"manager", "worksfor"} | {"employee"} - {"employee"} or True
        # the restriction keeps only types in S_manager:
        kept_types = {name for name, _ in restricted}
        assert kept_types <= {e.name for e in s_mgr}
