"""Unit tests for separation predicates (repro.topology.separation)."""

from repro.topology import (
    FiniteSpace,
    indistinguishable_pairs,
    is_discrete,
    is_t0,
    is_t1,
    is_t2,
    topology_from_subbase,
)

SIERPINSKI = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])


class TestSeparationLevels:
    def test_sierpinski_t0_not_t1(self):
        assert is_t0(SIERPINSKI)
        assert not is_t1(SIERPINSKI)
        assert not is_t2(SIERPINSKI)

    def test_discrete_is_everything(self):
        space = FiniteSpace.discrete("abc")
        assert is_t0(space) and is_t1(space) and is_t2(space)
        assert is_discrete(space)

    def test_indiscrete_fails_t0(self):
        assert not is_t0(FiniteSpace.indiscrete("ab"))

    def test_finite_t1_implies_discrete(self):
        # Exhaustive over a few generated spaces: t1 -> discrete.
        spaces = [
            FiniteSpace.discrete("ab"),
            SIERPINSKI,
            FiniteSpace.indiscrete("abc"),
            topology_from_subbase("abc", [{"a"}, {"b"}]),
        ]
        for space in spaces:
            if is_t1(space):
                assert is_discrete(space)


class TestIndistinguishable:
    def test_duplicate_points_found(self):
        space = FiniteSpace("abc", [set(), {"a"}, {"a", "b", "c"}])
        pairs = indistinguishable_pairs(space)
        assert frozenset({"b", "c"}) in pairs

    def test_t0_space_has_none(self):
        assert not indistinguishable_pairs(SIERPINSKI)

    def test_entity_type_axiom_makes_intension_t0(self):
        from repro.core.employee import employee_schema
        from repro.core.specialisation import SpecialisationStructure

        space = SpecialisationStructure(employee_schema()).space
        assert is_t0(space)
        assert not indistinguishable_pairs(space)
