"""Unit tests for multi-valued dependencies (repro.relational.mvd)."""

import random

import pytest

from repro.errors import DependencyError
from repro.relational import (
    FD,
    MVD,
    Relation,
    decomposition_mvd,
    fd_implies_mvd,
    holds_in as fd_holds_in,
    is_lossless_decomposition,
    swap_closure,
    violating_swaps,
)
from repro.relational.mvd import holds_in

U = frozenset({"course", "teacher", "book"})

# The classic: a course's teachers and books vary independently.
CTB = Relation(U, [
    {"course": "db", "teacher": "ann", "book": "ullman"},
    {"course": "db", "teacher": "ann", "book": "date"},
    {"course": "db", "teacher": "bob", "book": "ullman"},
    {"course": "db", "teacher": "bob", "book": "date"},
    {"course": "ai", "teacher": "cas", "book": "russell"},
])

BROKEN = Relation(U, [
    {"course": "db", "teacher": "ann", "book": "ullman"},
    {"course": "db", "teacher": "bob", "book": "date"},
])


class TestSemantics:
    def test_holds_on_product_shape(self):
        assert holds_in(MVD({"course"}, {"teacher"}, U), CTB)

    def test_violated_on_correlated_shape(self):
        assert not holds_in(MVD({"course"}, {"teacher"}, U), BROKEN)

    def test_violating_swaps_named(self):
        missing = violating_swaps(MVD({"course"}, {"teacher"}, U), BROKEN)
        assert len(missing) == 2  # (ann,date) and (bob,ullman)

    def test_universe_mismatch(self):
        with pytest.raises(DependencyError):
            holds_in(MVD({"a"}, {"b"}, {"a", "b"}), CTB)

    def test_sides_inside_universe(self):
        with pytest.raises(DependencyError):
            MVD({"zzz"}, {"teacher"}, U)

    def test_trivial_mvds(self):
        assert MVD({"course", "teacher"}, {"teacher"}, U).is_trivial()
        assert MVD({"course"}, {"teacher", "book"}, U).is_trivial()
        assert not MVD({"course"}, {"teacher"}, U).is_trivial()


class TestRules:
    def test_complementation(self):
        mvd = MVD({"course"}, {"teacher"}, U)
        comp = mvd.complement()
        assert comp.rhs == frozenset({"book"})
        assert holds_in(mvd, CTB) == holds_in(comp, CTB)

    def test_complementation_on_violation(self):
        mvd = MVD({"course"}, {"teacher"}, U)
        assert holds_in(mvd, BROKEN) == holds_in(mvd.complement(), BROKEN)

    def test_fd_implies_mvd_random(self):
        rng = random.Random(4)
        fd = FD({"course"}, {"teacher"})
        mvd = fd_implies_mvd(fd, U)
        for _ in range(80):
            rows = [
                {"course": rng.randint(0, 1), "teacher": rng.randint(0, 2),
                 "book": rng.randint(0, 2)}
                for _ in range(rng.randint(0, 5))
            ]
            rel = Relation(U, rows)
            if fd_holds_in(fd, rel):
                assert holds_in(mvd, rel)

    def test_mvd_weaker_than_fd(self):
        """CTB satisfies course ->> teacher but not course -> teacher."""
        assert holds_in(MVD({"course"}, {"teacher"}, U), CTB)
        assert not fd_holds_in(FD({"course"}, {"teacher"}), CTB)


class TestSwapClosure:
    def test_closure_repairs(self):
        mvd = MVD({"course"}, {"teacher"}, U)
        repaired = swap_closure(mvd, BROKEN)
        assert holds_in(mvd, repaired)
        assert BROKEN.tuples <= repaired.tuples
        assert len(repaired) == 4

    def test_closure_fixpoint_on_satisfying(self):
        mvd = MVD({"course"}, {"teacher"}, U)
        assert swap_closure(mvd, CTB) == CTB


class TestFaginTheorem:
    def test_mvd_iff_lossless_binary_split(self):
        """X ->> Y iff R = pi_{X|Y}(R) * pi_{X|Z}(R), on random instances."""
        rng = random.Random(11)
        left = frozenset({"course", "teacher"})
        right = frozenset({"course", "book"})
        mvd = decomposition_mvd(U, left, right)
        for _ in range(80):
            rows = [
                {"course": rng.randint(0, 1), "teacher": rng.randint(0, 1),
                 "book": rng.randint(0, 1)}
                for _ in range(rng.randint(0, 5))
            ]
            rel = Relation(U, rows)
            assert holds_in(mvd, rel) == is_lossless_decomposition(
                rel, [left, right],
            )

    def test_decomposition_must_cover(self):
        with pytest.raises(DependencyError):
            decomposition_mvd(U, {"course"}, {"teacher"})
