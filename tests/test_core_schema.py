"""Unit tests for entity types and schemas (repro.core.entity_types/schema)."""

import pytest

from repro.core import EntityType, Schema
from repro.errors import AxiomViolationError, SchemaError


class TestEntityType:
    def test_construction(self):
        e = EntityType("person", {"name", "age"})
        assert e.attributes == frozenset({"name", "age"})

    def test_rejects_empty_attribute_set(self):
        with pytest.raises(SchemaError):
            EntityType("ghost", set())

    def test_rejects_bad_names(self):
        with pytest.raises(SchemaError):
            EntityType("", {"a"})
        with pytest.raises(SchemaError):
            EntityType("e", {""})

    def test_specialisation_direction(self):
        person = EntityType("person", {"name", "age"})
        employee = EntityType("employee", {"name", "age", "depname"})
        assert employee.is_specialisation_of(person)
        assert person.is_generalisation_of(employee)
        assert not person.is_specialisation_of(employee)

    def test_reflexive_specialisation(self):
        e = EntityType("e", {"a"})
        assert e.is_specialisation_of(e) and e.is_generalisation_of(e)

    def test_shared_attributes(self):
        e1 = EntityType("e1", {"a", "b"})
        e2 = EntityType("e2", {"b", "c"})
        assert e1.shared_attributes(e2) == frozenset({"b"})

    def test_sorting_by_name(self):
        types = sorted([EntityType("b", {"x"}), EntityType("a", {"y"})])
        assert [t.name for t in types] == ["a", "b"]


class TestSchemaValidation:
    def test_entity_type_axiom_enforced(self):
        with pytest.raises(AxiomViolationError) as exc:
            Schema.from_attribute_sets({"e1": {"a"}, "e2": {"a"}})
        assert exc.value.axiom == "Entity Type Axiom"

    def test_duplicate_names_rejected(self):
        from repro.core import AttributeUniverse

        universe = AttributeUniverse.from_values({"a": [1], "b": [1]})
        with pytest.raises(SchemaError):
            Schema(universe, [EntityType("e", {"a"}), EntityType("e", {"b"})])

    def test_stray_attributes_rejected(self):
        from repro.core import AttributeUniverse

        universe = AttributeUniverse.from_values({"a": [1]})
        with pytest.raises(SchemaError):
            Schema(universe, [EntityType("e", {"zzz"})])

    def test_missing_domains_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_attribute_sets({"e": {"a"}}, domains={"b": [1]})


class TestSchemaAccess:
    def test_lookup(self, schema):
        assert schema["person"].attributes == frozenset({"name", "age"})
        with pytest.raises(SchemaError):
            schema["nothing"]
        assert schema.get("nothing") is None

    def test_contains(self, schema):
        assert "person" in schema
        assert schema["person"] in schema
        assert EntityType("person", {"other"}) not in schema

    def test_len_iter(self, schema):
        assert len(schema) == 5
        assert sorted(e.name for e in schema) == [
            "department", "employee", "manager", "person", "worksfor",
        ]

    def test_usage_sets(self, schema):
        v_budget = {e.name for e in schema.using("budget")}
        assert v_budget == {"manager"}
        v_name = {e.name for e in schema.using("name")}
        assert v_name == {"person", "employee", "manager", "worksfor"}

    def test_usage_family_covers_all(self, schema):
        family = schema.usage_family()
        assert set(family) == set(schema.property_names)

    def test_used_property_names(self, schema):
        assert schema.used_property_names() == frozenset(
            {"name", "age", "depname", "budget", "location"}
        )


class TestSchemaEdits:
    def test_with_entity_type(self, schema):
        grown = schema.with_entity_type(EntityType("veteran", {"name", "age", "budget"}))
        assert len(grown) == 6
        assert len(schema) == 5  # original untouched

    def test_with_entity_type_revalidates(self, schema):
        with pytest.raises(AxiomViolationError):
            schema.with_entity_type(EntityType("clone", {"name", "age"}))

    def test_without_entity_type(self, schema):
        smaller = schema.without_entity_type("worksfor")
        assert len(smaller) == 4
        with pytest.raises(SchemaError):
            schema.without_entity_type("nothing")
