"""Unit tests for the normalization baselines (repro.relational.normalization)."""

from repro.relational import (
    FD,
    bcnf_decompose,
    bcnf_violations,
    decomposition_report,
    is_bcnf,
    is_lossless,
    preserves_dependencies,
    third_nf_synthesis,
)

# The classic address schema: city+street -> zip, zip -> city.
ADDRESS = frozenset({"city", "street", "zip"})
ADDRESS_FDS = [FD({"city", "street"}, {"zip"}), FD({"zip"}, {"city"})]


class TestBCNF:
    def test_violation_detection(self):
        violations = bcnf_violations(ADDRESS, ADDRESS_FDS)
        assert any(v.lhs == frozenset({"zip"}) for v in violations)

    def test_key_fd_not_violation(self):
        schema = frozenset({"a", "b"})
        assert is_bcnf(schema, [FD({"a"}, {"b"})])

    def test_decomposition_reaches_bcnf(self):
        parts = bcnf_decompose(ADDRESS, ADDRESS_FDS)
        for part in parts:
            assert is_bcnf(part, ADDRESS_FDS)

    def test_decomposition_lossless(self):
        parts = bcnf_decompose(ADDRESS, ADDRESS_FDS)
        assert is_lossless(ADDRESS, parts, ADDRESS_FDS)

    def test_address_loses_dependency(self):
        """The textbook fact: BCNF on the address schema drops city+street->zip."""
        parts = bcnf_decompose(ADDRESS, ADDRESS_FDS)
        assert not preserves_dependencies(parts, ADDRESS_FDS)


class Test3NF:
    def test_synthesis_lossless_and_preserving(self):
        parts = third_nf_synthesis(ADDRESS, ADDRESS_FDS)
        assert is_lossless(ADDRESS, parts, ADDRESS_FDS)
        assert preserves_dependencies(parts, ADDRESS_FDS)

    def test_orphan_attributes_kept(self):
        schema = frozenset({"a", "b", "free"})
        parts = third_nf_synthesis(schema, [FD({"a"}, {"b"})])
        covered = frozenset().union(*parts)
        assert "free" in covered

    def test_no_fds(self):
        schema = frozenset({"a", "b"})
        parts = third_nf_synthesis(schema, [])
        assert parts == [schema]


class TestReport:
    def test_report_fields(self):
        report = decomposition_report(ADDRESS, ADDRESS_FDS)
        assert report["bcnf_lossless"] is True
        assert report["bcnf_preserving"] is False
        assert report["3nf_lossless"] is True
        assert report["3nf_preserving"] is True

    def test_report_on_clean_schema(self):
        report = decomposition_report({"a", "b"}, [FD({"a"}, {"b"})])
        assert report["bcnf_parts"] == [frozenset({"a", "b"})]
