"""Unit tests for the chase and lossless-join tests (repro.relational.chase)."""

import random
import time

import pytest

from repro.relational import FD, Relation, binary_lossless, is_lossless
from repro.relational.chase import Tableau


class TestTableau:
    def test_initial_tableau_shape(self):
        t = Tableau.for_decomposition("abc", [{"a", "b"}, {"b", "c"}])
        assert len(t.rows) == 2
        assert t.rows[0]["a"] == ("a", "a")
        assert t.rows[0]["c"][0] == "b"

    def test_distinguished_row_detection(self):
        t = Tableau.for_decomposition("ab", [{"a", "b"}])
        assert t.has_distinguished_row()

    def test_chase_step_equates(self):
        t = Tableau.for_decomposition("abc", [{"a", "b"}, {"b", "c"}])
        changed = t.chase_step(FD({"b"}, {"c"}))
        assert changed
        assert t.rows[0]["c"] == t.rows[1]["c"] == ("a", "c")

    def test_chase_step_merge_heavy_regression(self):
        """Regression for the quadratic symbol-rewrite loop.

        Every row agrees on the (empty-complement) lhs attribute ``a``, so
        one chase step performs a merge per row pair per rhs attribute.
        The old implementation rescanned every cell of every row for each
        merge — cubic in the row count here; the symbol-location index
        makes the step near-linear.  The tableau is big enough that the
        old loop took several seconds; the budget fails loudly if the
        rescan comes back, while the equated symbols pin correctness.
        """
        n_rows, extra_attrs = 120, 6
        schema = ["a"] + [f"x{i}" for i in range(extra_attrs)]
        parts = [{"a"} for _ in range(n_rows)]
        t = Tableau.for_decomposition(schema, parts)
        fd = FD({"a"}, set(schema) - {"a"})
        start = time.perf_counter()
        assert t.chase_step(fd)
        elapsed = time.perf_counter() - start
        # All rows must now agree on every attribute (symbols equated
        # pairwise across the whole column).
        first = t.rows[0]
        assert all(row == first for row in t.rows)
        assert elapsed < 2.0, f"chase_step took {elapsed:.2f}s; rewrite loop regressed"


class TestLossless:
    def test_classic_lossless(self):
        assert is_lossless("abc", [{"a", "b"}, {"b", "c"}], [FD({"b"}, {"c"})])

    def test_classic_lossy(self):
        assert not is_lossless("abc", [{"a", "b"}, {"b", "c"}], [])

    def test_three_way(self):
        fds = [FD({"a"}, {"b"}), FD({"b"}, {"c"})]
        assert is_lossless("abcd", [{"a", "b"}, {"b", "c"}, {"a", "d"}], fds)

    def test_binary_shortcut_agrees_with_chase(self):
        rng = random.Random(42)
        attrs = ["a", "b", "c", "d"]
        for _ in range(60):
            left = frozenset(rng.sample(attrs, rng.randint(1, 3)))
            right = frozenset(rng.sample(attrs, rng.randint(1, 3)))
            schema = left | right
            fds = []
            for _ in range(rng.randint(0, 3)):
                lhs = frozenset(rng.sample(sorted(schema), 1))
                rhs = frozenset(rng.sample(sorted(schema), 1))
                fds.append(FD(lhs, rhs))
            chase_says = is_lossless(schema, [left, right], fds)
            shortcut_says = binary_lossless(schema, left, right, fds)
            assert chase_says == shortcut_says, (left, right, fds)


class TestChaseAgainstInstances:
    @pytest.mark.slow
    def test_chase_validated_by_brute_force(self):
        """Schema-level verdict must match instance-level round-trips."""
        rng = random.Random(7)
        from repro.relational import is_lossless_decomposition

        for _ in range(30):
            schema = frozenset("abc")
            parts = [frozenset({"a", "b"}), frozenset({"b", "c"})]
            fds = [FD({"b"}, {"c"})] if rng.random() < 0.5 else []
            verdict = is_lossless(schema, parts, fds)
            # Sample random instances satisfying the fds; if the chase says
            # lossless, every such instance must round-trip.
            for _ in range(20):
                rows = []
                for _ in range(rng.randint(0, 4)):
                    rows.append({
                        "a": rng.randint(0, 2),
                        "b": rng.randint(0, 2),
                        "c": rng.randint(0, 2),
                    })
                rel = Relation(schema, rows)
                from repro.relational import holds_in

                if not all(holds_in(fd, rel) for fd in fds):
                    continue
                if verdict:
                    assert is_lossless_decomposition(rel, parts)
