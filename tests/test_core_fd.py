"""Unit tests for entity-level FDs and the triangle theorem (section 5.1)."""

import pytest

from repro.core import (
    EntityFD,
    holds,
    lambda_mapping,
    propagates_to,
    triangle_commutes,
    violations,
)
from repro.errors import DependencyError


class TestTyping:
    def test_valid_fd(self, schema, worksfor_fd):
        worksfor_fd.validate(schema)  # must not raise

    def test_determinant_must_generalise_context(self, schema):
        bad = EntityFD(schema["manager"], schema["person"], schema["employee"])
        with pytest.raises(DependencyError):
            bad.validate(schema)

    def test_dependent_must_generalise_context(self, schema):
        bad = EntityFD(schema["person"], schema["manager"], schema["employee"])
        with pytest.raises(DependencyError):
            bad.validate(schema)

    def test_trivial_detection(self, schema):
        trivial = EntityFD(schema["employee"], schema["person"], schema["employee"])
        assert trivial.is_trivial()
        nontrivial = EntityFD(schema["person"], schema["employee"], schema["employee"])
        assert not nontrivial.is_trivial()


class TestSemantics:
    def test_worksfor_fd_holds(self, db, worksfor_fd):
        assert holds(worksfor_fd, db)
        assert violations(worksfor_fd, db) == []

    def test_violation_detection(self, db, schema, worksfor_fd):
        # Same employee tuple, second department instance (location differs):
        # the employee part no longer determines the department part.
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        assert not holds(worksfor_fd, broken)
        assert len(violations(worksfor_fd, broken)) == 1

    def test_empty_context_satisfies_all(self, schema):
        from repro.core import DatabaseExtension

        empty = DatabaseExtension(schema)
        fd = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        assert holds(fd, empty)


class TestTriangleTheorem:
    def test_lambda_exists_iff_fd_holds(self, db, worksfor_fd):
        lam = lambda_mapping(worksfor_fd, db)
        assert lam is not None
        assert triangle_commutes(worksfor_fd, db, lam)

    def test_lambda_none_when_fd_fails(self, db, worksfor_fd):
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        assert lambda_mapping(worksfor_fd, broken) is None

    def test_lambda_domain_is_E_e(self, db, schema, worksfor_fd):
        lam = lambda_mapping(worksfor_fd, db)
        domain = set(lam)
        expected = set(db.E(schema["employee"], schema["worksfor"]).tuples)
        assert domain == expected

    def test_commutation_checked_pointwise(self, db, schema, worksfor_fd):
        lam = lambda_mapping(worksfor_fd, db)
        # Corrupt one image: commutation must fail.
        key = next(iter(lam))
        other_value = {
            "depname": "admin", "location": "delft",
        }
        from repro.relational import Tuple

        lam[key] = Tuple(other_value)
        assert not triangle_commutes(worksfor_fd, db, lam)


class TestPropagation:
    def test_propagation_theorem(self, db, schema):
        """fd valid in context person propagates to every h in S_person."""
        fd = EntityFD(schema["person"], schema["person"], schema["person"])
        results = propagates_to(fd, db)
        assert len(results) == 4  # S_person
        assert all(verdict for _, verdict in results)

    def test_propagation_of_worksfor_fd(self, db, schema, worksfor_fd):
        results = propagates_to(worksfor_fd, db)
        # S_worksfor = {worksfor}: propagation is just the fd itself.
        assert [fd.context.name for fd, _ in results] == ["worksfor"]
        assert all(verdict for _, verdict in results)

    def test_propagation_with_containment(self, db, schema):
        """A dependency on employee propagates to manager instances."""
        fd = EntityFD(schema["person"], schema["employee"], schema["employee"])
        if holds(fd, db):
            for propagated, verdict in propagates_to(fd, db):
                assert verdict, propagated
