"""Batch engine vs. per-constraint routes: seeded differential suites.

PR 3's contract mirrors the PR 1/2 kernels': the batch engine
(`repro.kernel.batch`) and the shared-interned extension kernel are only
allowed to be *faster* than the per-constraint object-level routes, never
different.  Each property below drives both routes with ~200 seeded
random cases from the shared ``tests/generators.py`` harness and asserts
exact agreement — verdicts *and* witness outputs, including ordering
where the oracle pins one — plus the degenerate corners (empty relations,
trivial/self-implied constraints, single-attribute schemas, >64-symbol
columns).
"""

from __future__ import annotations

import random

import pytest

from generators import (
    random_database_states,
    random_instance_fd,
    random_jd,
    random_mvd,
    random_relation,
)

from repro.core import (
    CardinalityConstraint,
    EntityFD,
    FunctionalConstraint,
    ParticipationConstraint,
    Schema,
    SubsetConstraint,
    check_all,
    check_all_naive,
    check_integrity_axiom,
    check_integrity_axiom_naive,
)
from repro.core.extension import DatabaseExtension
from repro.core.fd import violations as entity_violations
from repro.core.fd import violations_naive as entity_violations_naive
from repro.kernel import CheckSet, ExtensionKernel, InstanceKernel
from repro.relational import (
    FD,
    MVD,
    Relation,
    spurious_tuples,
    spurious_tuples_naive,
    swap_closure,
    swap_closure_naive,
    violating_pairs,
    violating_pairs_naive,
    violating_swaps,
    violating_swaps_naive,
)
from repro.relational.fd import holds_in_naive as fd_holds_naive
from repro.relational.jd import holds_in_naive as jd_holds_naive
from repro.relational.mvd import holds_in_naive as mvd_holds_naive
from repro.workloads import (
    enforce_extension_axiom,
    enforce_extension_axiom_naive,
)

N_CASES = 200
# Extension-level properties draw up to three database states per seed
# (clean, containment-broken, injectivity-broken), so ~70 seeds yield
# ~200 state cases per property.
N_EXTENSION_SEEDS = 70
ATTRS = ["a", "b", "c", "d"]


def seeded(offset: int, n: int = N_CASES) -> list[random.Random]:
    return [random.Random(0xBA7C + offset * 10_007 + i) for i in range(n)]


# ----------------------------------------------------------------------
# CheckSet: one heterogeneous sweep == the per-constraint routes
# ----------------------------------------------------------------------
class TestCheckSetAgainstSequential:
    @pytest.mark.parametrize("rng", seeded(1))
    def test_heterogeneous_sweep_matches_per_constraint(self, rng):
        """FDs, MVDs, and JDs compiled into ONE CheckSet agree with each
        constraint checked alone through the naive oracles — verdicts and
        raw witness counts."""
        rel = random_relation(rng, ATTRS)
        fds = [random_instance_fd(rng, ATTRS) for _ in range(3)]
        mvds = [random_mvd(rng, ATTRS) for _ in range(2)]
        jds = [random_jd(rng, ATTRS) for _ in range(2)]
        inst = InstanceKernel.of(rel)
        checks = CheckSet(inst)
        for i, fd in enumerate(fds):
            checks.add_fd(("fd", i), fd.lhs, fd.rhs)
        for i, mvd in enumerate(mvds):
            checks.add_mvd(("mvd", i), mvd.lhs, mvd.rhs)
        for i, jd in enumerate(jds):
            checks.add_jd(("jd", i), jd.components)
        results = checks.run(witnesses=True)
        for i, fd in enumerate(fds):
            verdict = results[("fd", i)]
            assert verdict.ok == fd_holds_naive(fd, rel)
            assert verdict.ok == (not verdict.witness)
        for i, mvd in enumerate(mvds):
            verdict = results[("mvd", i)]
            assert verdict.ok == mvd_holds_naive(mvd, rel)
            assert len(verdict.witness) == len(violating_swaps_naive(mvd, rel))
        for i, jd in enumerate(jds):
            verdict = results[("jd", i)]
            assert verdict.ok == jd_holds_naive(jd, rel)
            assert len(verdict.witness) == len(spurious_tuples_naive(jd, rel))

    @pytest.mark.parametrize("rng", seeded(2))
    def test_verdict_only_run_matches_witness_run(self, rng):
        """The early-exit verdict sweep and the full witness sweep agree."""
        rel = random_relation(rng, ATTRS)
        fds = [random_instance_fd(rng, ATTRS) for _ in range(3)]
        mvds = [random_mvd(rng, ATTRS) for _ in range(2)]
        inst = InstanceKernel.of(rel)

        def compile_checks():
            checks = CheckSet(inst)
            for i, fd in enumerate(fds):
                checks.add_fd(("fd", i), fd.lhs, fd.rhs)
            for i, mvd in enumerate(mvds):
                checks.add_mvd(("mvd", i), mvd.lhs, mvd.rhs)
            return checks

        fast = compile_checks().run()
        full = compile_checks().run(witnesses=True)
        assert {k: v.ok for k, v in fast.items()} == \
            {k: v.ok for k, v in full.items()}

    def test_duplicate_key_rejected(self):
        inst = InstanceKernel.of(Relation(ATTRS))
        checks = CheckSet(inst).add_fd("k", {"a"}, {"b"})
        with pytest.raises(ValueError):
            checks.add_mvd("k", {"a"}, {"b"})


# ----------------------------------------------------------------------
# Witness producers: routed == naive, exactly (order included)
# ----------------------------------------------------------------------
class TestWitnessProducers:
    @pytest.mark.parametrize("rng", seeded(3))
    def test_violating_pairs(self, rng):
        rel = random_relation(rng, ATTRS)
        fd = random_instance_fd(rng, ATTRS)
        assert violating_pairs(fd, rel) == violating_pairs_naive(fd, rel)

    @pytest.mark.parametrize("rng", seeded(4))
    def test_violating_swaps(self, rng):
        rel = random_relation(rng, ATTRS)
        mvd = random_mvd(rng, ATTRS)
        assert violating_swaps(mvd, rel) == violating_swaps_naive(mvd, rel)

    @pytest.mark.parametrize("rng", seeded(5))
    def test_swap_closure(self, rng):
        rel = random_relation(rng, ATTRS)
        mvd = random_mvd(rng, ATTRS)
        closed = swap_closure(mvd, rel)
        closed_naive = swap_closure_naive(mvd, rel)
        assert closed == closed_naive
        if closed_naive is rel:  # satisfied MVD: both return the input itself
            assert closed is rel

    @pytest.mark.parametrize("rng", seeded(6))
    def test_spurious_tuples(self, rng):
        rel = random_relation(rng, ATTRS)
        jd = random_jd(rng, ATTRS)
        assert spurious_tuples(jd, rel) == spurious_tuples_naive(jd, rel)


# ----------------------------------------------------------------------
# Extension level: shared interning == object-level sweeps
# ----------------------------------------------------------------------
class TestExtensionKernelAgainstNaive:
    @pytest.mark.parametrize("rng", seeded(7, N_EXTENSION_SEEDS))
    def test_containment_and_extension_axiom_reports(self, rng):
        for _, db in random_database_states(rng):
            assert db.containment_violations() == \
                db.containment_violations_naive()
            for e in sorted(db.contributors.compound_types()):
                routed = db.extension_axiom_violations(e)
                naive = db.extension_axiom_violations_naive(e)
                assert routed["unsupported"] == naive["unsupported"]
                assert routed["collisions"] == naive["collisions"]
                assert db.contributor_join(e) == db.contributor_join_naive(e)

    @pytest.mark.parametrize("rng", seeded(8, N_EXTENSION_SEEDS))
    def test_check_all_findings_agree(self, rng):
        for schema, db in random_database_states(rng):
            routed = check_all(schema, db)
            naive = check_all_naive(schema, db)
            assert routed.findings == naive.findings

    @pytest.mark.parametrize("rng", seeded(9, N_EXTENSION_SEEDS))
    def test_enforce_extension_axiom_fixpoints_agree(self, rng):
        for _, db in random_database_states(rng):
            assert enforce_extension_axiom(db) == \
                enforce_extension_axiom_naive(db)

    @pytest.mark.parametrize("rng", seeded(10, N_EXTENSION_SEEDS))
    def test_entity_fd_violations_agree(self, rng):
        for schema, db in random_database_states(rng):
            types = sorted(schema.entity_types)
            context = rng.choice(types)
            gen = [t for t in types if t.attributes <= context.attributes]
            fd = EntityFD(rng.choice(gen), rng.choice(gen), context)
            assert entity_violations(fd, db) == entity_violations_naive(fd, db)

    def test_integrity_constraint_audit_agrees(self):
        """The batched constraint verdicts (one CheckSet per context,
        id-space containments) match the per-constraint naive route over
        random constraint sets — and violated verdicts genuinely occur
        across the sample, so the non-trivial branches are exercised."""
        violated_seen = 0
        checked = 0
        for i in range(N_EXTENSION_SEEDS):
            rng = random.Random(0xC0115 + i)
            for schema, db in random_database_states(rng):
                constraints = _random_constraints(rng, schema)
                routed = check_integrity_axiom(schema, constraints, db)
                naive = check_integrity_axiom_naive(schema, constraints, db)
                assert routed == naive
                checked += len(constraints)
                violated_seen += sum(
                    1 for f in routed if "violated" in f.message
                )
        assert checked > 100
        assert violated_seen > 0, "sample never exercised a violated verdict"

    def test_ill_typed_fd_constraint_is_reported_not_raised(self):
        """An EntityFD whose determinant is not a generalisation of its
        context is constructible by design ('constructed in bulk by
        generators before filtering'); a db-level audit must report it
        as a finding and keep going, never abort mid-audit."""
        rng = random.Random(0x111)
        schema, db = random_database_states(rng)[0]
        types = sorted(schema.entity_types)
        context = min(types, key=lambda t: len(t.attributes))
        wide = max(types, key=lambda t: len(t.attributes))
        assert not wide.attributes <= context.attributes
        bad = FunctionalConstraint(EntityFD(wide, wide, context))
        good = SubsetConstraint(wide, context) \
            if context.attributes <= wide.attributes else None
        constraints = [bad] + ([good] if good else [])
        routed = check_integrity_axiom(schema, constraints, db)
        naive = check_integrity_axiom_naive(schema, constraints, db)
        assert routed == naive
        assert any("ill-typed" in f.message for f in routed)
        report = check_all(schema, db, constraints=constraints)
        assert report.by_axiom("Integrity Axiom")


def _random_constraints(rng: random.Random, schema: Schema) -> list:
    """A few random well-typed constraints of every built-in kind."""
    types = sorted(schema.entity_types)
    out = []
    for _ in range(6):
        context = rng.choice(types)
        gens = [t for t in types if t.attributes <= context.attributes]
        proper = [t for t in gens if t != context]
        kind = rng.randrange(4)
        if kind == 0:
            out.append(FunctionalConstraint(
                EntityFD(rng.choice(gens), rng.choice(gens), context)
            ))
        elif kind == 1 and proper:
            out.append(SubsetConstraint(context, rng.choice(proper)))
        elif kind == 2 and proper:
            out.append(ParticipationConstraint(context, rng.choice(proper)))
        elif kind == 3 and proper:
            out.append(CardinalityConstraint(
                context, rng.choice(proper), rng.choice(proper),
                rng.choice(("1:1", "1:n", "n:m")),
            ))
    return out


# ----------------------------------------------------------------------
# Degenerate corners
# ----------------------------------------------------------------------
class TestDegenerateCorners:
    def _agree_all(self, rel: Relation, fd: FD, mvd: MVD):
        assert violating_pairs(fd, rel) == violating_pairs_naive(fd, rel)
        assert violating_swaps(mvd, rel) == violating_swaps_naive(mvd, rel)
        assert swap_closure(mvd, rel) == swap_closure_naive(mvd, rel)

    def test_empty_relation(self):
        rel = Relation(ATTRS)
        self._agree_all(rel, FD({"a"}, {"b"}), MVD({"a"}, {"b"}, ATTRS))

    def test_empty_lhs_constraints(self):
        rng = random.Random(0)
        rel = random_relation(rng, ATTRS)
        self._agree_all(rel, FD((), {"b"}), MVD((), {"b", "c"}, ATTRS))

    def test_trivial_self_implied_constraints(self):
        rng = random.Random(1)
        rel = random_relation(rng, ATTRS)
        trivial_fd = FD({"a", "b"}, {"a"})
        trivial_mvd = MVD({"a"}, {"b", "c", "d"}, ATTRS)  # lhs|rhs == universe
        assert violating_pairs(trivial_fd, rel) == []
        assert violating_swaps(trivial_mvd, rel) == []
        assert swap_closure(trivial_mvd, rel) is rel
        self._agree_all(rel, trivial_fd, trivial_mvd)

    def test_single_attribute_schema(self):
        rel = Relation(["a"], [{"a": i} for i in range(4)])
        fd = FD({"a"}, {"a"})
        mvd = MVD({"a"}, {"a"}, ["a"])
        self._agree_all(rel, fd, mvd)
        from repro.relational import JoinDependency
        jd = JoinDependency([{"a"}], ["a"])
        assert spurious_tuples(jd, rel) == spurious_tuples_naive(jd, rel)

    def test_wide_symbol_columns_beyond_64(self):
        """Columns with >64 distinct symbols (ids are plain ints, not
        bit positions — this corner guards the distinction).  Groups are
        kept small so the naive closure oracle stays tractable."""
        rows = [{"a": i // 2, "b": i % 2, "c": i, "d": (i * 7) % 170}
                for i in range(170)]
        rel = Relation(ATTRS, rows)
        self._agree_all(rel, FD({"a"}, {"c"}), MVD({"a"}, {"b"}, ATTRS))

    def test_empty_intermediate_contributor_join_keeps_full_schema(self):
        """Three contributors whose intermediate join is empty: the
        kernel join must still report the full attribute union, matching
        the naive oracle's empty relation over the union schema."""
        schema = Schema.from_attribute_sets({
            "c1": {"a", "b"},
            "c2": {"b", "c"},
            "c3": {"c", "w"},
            "compound": {"a", "b", "c", "w"},
        })
        db = DatabaseExtension(schema, {
            "c1": [{"a": 0, "b": 1}],
            "c2": [{"b": 2, "c": 0}],  # disjoint b-values: c1 * c2 is empty
            "c3": [{"c": 0, "w": 5}],
            "compound": [{"a": 0, "b": 1, "c": 0, "w": 5}],
        })
        e = schema["compound"]
        assert set(db.contributors.contributors(e)) == \
            {schema["c1"], schema["c2"], schema["c3"]}
        joined = db.contributor_join(e)
        assert joined == db.contributor_join_naive(e)
        assert joined.schema == frozenset({"a", "b", "c", "w"})
        assert len(joined) == 0
        routed = db.extension_axiom_violations(e)
        naive = db.extension_axiom_violations_naive(e)
        assert routed["unsupported"] == naive["unsupported"]
        assert routed["collisions"] == naive["collisions"]

    def test_extension_kernel_shares_symbol_tables(self):
        """One symbol space per attribute: ids of a shared attribute
        coincide across relations, so cross-relation rows compare raw."""
        left = Relation(["x", "y"], [{"x": i, "y": i + 100} for i in range(70)])
        right = Relation(["y", "z"], [{"y": i + 100, "z": i % 5} for i in range(70)])
        kern = ExtensionKernel({"L": left, "R": right})
        li = kern.instance("L")
        ri = kern.instance("R")
        y_left = li.tables[li.attr_index["y"]]
        y_right = ri.tables[ri.attr_index["y"]]
        assert y_left is y_right
        assert kern.project_named("L", {"y"}) == kern.project_named("R", {"y"})

    def test_empty_relation_extension_report(self):
        """All-empty relations: the clean state reports nothing and both
        routes agree on the injected-violation states too."""
        rng = random.Random(2)
        states = random_database_states(rng, rows_per_leaf=0)
        schema, clean = states[0]
        assert clean.containment_violations() == \
            clean.containment_violations_naive() == []
        for schema, db in states:
            assert db.containment_violations() == \
                db.containment_violations_naive()
            assert check_all(schema, db).findings == \
                check_all_naive(schema, db).findings
