"""Unit tests for continuous maps (repro.topology.maps)."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    FiniteSpace,
    SpaceMap,
    constant_map,
    identity_map,
    monotone_iff_continuous,
    topology_from_subbase,
)

SIERPINSKI = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])
DISCRETE = FiniteSpace.discrete("xy")
INDISCRETE = FiniteSpace.indiscrete("xy")


class TestConstruction:
    def test_rejects_partial_map(self):
        with pytest.raises(TopologyError):
            SpaceMap(SIERPINSKI, DISCRETE, {"a": "x"})

    def test_rejects_stray_targets(self):
        with pytest.raises(TopologyError):
            SpaceMap(SIERPINSKI, DISCRETE, {"a": "x", "b": "zzz"})

    def test_call_image_preimage(self):
        f = SpaceMap(SIERPINSKI, DISCRETE, {"a": "x", "b": "x"})
        assert f("a") == "x"
        assert f.image() == frozenset({"x"})
        assert f.preimage({"x"}) == frozenset({"a", "b"})
        assert f.preimage({"y"}) == frozenset()


class TestContinuity:
    def test_identity_is_homeomorphism(self):
        assert identity_map(SIERPINSKI).is_homeomorphism()

    def test_constant_map_continuous(self):
        assert constant_map(DISCRETE, SIERPINSKI, "b").is_continuous()

    def test_everything_into_indiscrete_continuous(self):
        f = SpaceMap(DISCRETE, INDISCRETE, {"x": "x", "y": "y"})
        assert f.is_continuous()

    def test_indiscrete_to_discrete_not_continuous(self):
        f = SpaceMap(INDISCRETE, DISCRETE, {"x": "x", "y": "y"})
        assert not f.is_continuous()

    def test_swap_on_sierpinski_not_continuous(self):
        f = SpaceMap(SIERPINSKI, SIERPINSKI, {"a": "b", "b": "a"})
        assert not f.is_continuous()

    def test_open_map(self):
        f = SpaceMap(DISCRETE, DISCRETE, {"x": "y", "y": "x"})
        assert f.is_open_map()


class TestStructure:
    def test_injective_surjective_bijective(self):
        f = SpaceMap(DISCRETE, DISCRETE, {"x": "y", "y": "x"})
        assert f.is_bijective()
        g = constant_map(DISCRETE, DISCRETE, "x")
        assert not g.is_injective() and not g.is_surjective()

    def test_embedding_of_subchain(self):
        chain3 = topology_from_subbase("abc", [{"a"}, {"a", "b"}])
        chain2 = topology_from_subbase("pq", [{"p"}])
        f = SpaceMap(chain2, chain3, {"p": "a", "q": "b"})
        assert f.is_embedding()

    def test_non_embedding_when_order_collapses(self):
        chain2 = topology_from_subbase("pq", [{"p"}])
        f = SpaceMap(chain2, FiniteSpace.indiscrete("ab"), {"p": "a", "q": "b"})
        # Continuous and injective, but the inverse from the image is not
        # continuous: the subspace of an indiscrete space is indiscrete.
        assert f.is_injective() and f.is_continuous()
        assert not f.is_embedding()

    def test_composition(self):
        f = SpaceMap(DISCRETE, DISCRETE, {"x": "y", "y": "x"})
        g = f.compose(f)
        assert g("x") == "x" and g("y") == "y"

    def test_composition_mismatch(self):
        f = SpaceMap(DISCRETE, DISCRETE, {"x": "x", "y": "y"})
        h = SpaceMap(SIERPINSKI, SIERPINSKI, {"a": "a", "b": "b"})
        with pytest.raises(TopologyError):
            f.compose(h)


class TestAlexandrovEquivalence:
    def test_monotone_iff_continuous_positive(self):
        chain = topology_from_subbase("abc", [{"a"}, {"a", "b"}])
        f = SpaceMap(chain, chain, {"a": "a", "b": "b", "c": "c"})
        assert monotone_iff_continuous(f)

    def test_monotone_iff_continuous_negative_case_agrees(self):
        chain = topology_from_subbase("abc", [{"a"}, {"a", "b"}])
        f = SpaceMap(chain, chain, {"a": "c", "b": "b", "c": "a"})
        assert monotone_iff_continuous(f)
