"""Unit tests for database extensions (section 4)."""

import pytest

from repro.core import DatabaseExtension
from repro.errors import ContainmentError, ExtensionError
from repro.relational import Relation, Tuple


class TestConstruction:
    def test_missing_relations_default_empty(self, schema):
        db = DatabaseExtension(schema)
        for e in schema:
            assert len(db.R(e)) == 0

    def test_schema_shape_checked(self, schema):
        with pytest.raises(ExtensionError):
            DatabaseExtension(schema, {"person": [{"name": "ann"}]})

    def test_domain_membership_checked(self, schema):
        with pytest.raises(ExtensionError):
            DatabaseExtension(schema, {
                "person": [{"name": "ann", "age": 999}],
            })

    def test_lookup_by_name_or_type(self, db, schema):
        assert db.R("person") == db.R(schema["person"])

    def test_unknown_type_rejected(self, db):
        from repro.core import EntityType

        with pytest.raises(ExtensionError):
            db.R(EntityType("alien", {"name"}))

    def test_total_instances(self, db):
        assert db.total_instances() == sum(len(db.R(e)) for e in db.schema)


class TestProjections:
    def test_pi_projects(self, db, schema):
        projected = db.pi("manager", "person")
        assert projected.schema == schema["person"].attributes
        assert len(projected) == 1

    def test_pi_requires_specialisation(self, db):
        with pytest.raises(ExtensionError):
            db.pi("person", "manager")

    def test_E_mapping(self, db, schema):
        """E_e(s): information about e stored in its specialisation s."""
        via_manager = db.E("person", "manager")
        assert via_manager.is_subset_of(db.R("person"))

    def test_E_requires_s_in_S_e(self, db):
        with pytest.raises(ExtensionError):
            db.E("manager", "person")


class TestContainment:
    def test_clean_state(self, db):
        assert db.satisfies_containment()
        assert db.containment_violations() == []
        db.require_containment()

    def test_violation_detected(self, db, schema):
        broken = db.insert(
            "manager",
            {"name": "eva", "age": 47, "depname": "admin", "budget": 100},
            propagate=False,
        )
        violations = broken.containment_violations()
        assert violations
        pairs = {(s.name, e.name) for s, e, _ in violations}
        assert ("manager", "employee") in pairs
        with pytest.raises(ContainmentError):
            broken.require_containment()

    def test_propagating_insert_keeps_containment(self, db):
        grown = db.insert(
            "manager",
            {"name": "eva", "age": 47, "depname": "admin", "budget": 100},
        )
        assert grown.satisfies_containment()
        assert {"name": "eva", "age": 47} in grown.R("person")

    def test_propagating_delete_cascades(self, db):
        shrunk = db.delete("person", {"name": "ann", "age": 31})
        assert len(shrunk.R("manager")) == 0
        assert shrunk.satisfies_containment()

    def test_nonpropagating_delete_breaks_containment(self, db):
        shrunk = db.delete("person", {"name": "ann", "age": 31}, propagate=False)
        assert not shrunk.satisfies_containment()


class TestExtensionAxiom:
    def test_clean_state(self, db):
        assert db.satisfies_extension_axiom()
        assert db.is_consistent()

    def test_contributor_join(self, db, schema):
        joined = db.contributor_join("worksfor")
        assert joined.schema == schema["worksfor"].attributes
        assert db.R("worksfor").is_subset_of(joined)

    def test_join_undefined_for_primitive(self, db):
        with pytest.raises(ExtensionError):
            db.contributor_join("person")

    def test_injectivity_violation_detected(self, db):
        # A second manager tuple for the same employee: "an employee can
        # be a manager in at most one way" fails.
        broken = db.replace("manager", db.R("manager").with_tuples([
            {"name": "ann", "age": 31, "depname": "sales", "budget": 500},
        ]))
        report = broken.extension_axiom_violations("manager")
        assert report["collisions"]
        assert not broken.satisfies_extension_axiom("manager")

    def test_unsupported_tuple_detected(self, db):
        broken = db.replace("worksfor", db.R("worksfor").with_tuples([
            {"name": "fay", "age": 53, "depname": "admin", "location": "delft"},
        ]))
        report = broken.extension_axiom_violations("worksfor")
        assert len(report["unsupported"]) == 1

    def test_replace_keeps_original(self, db):
        patched = db.replace("person", [])
        assert len(db.R("person")) == 4
        assert len(patched.R("person")) == 0


class TestEquality:
    def test_value_equality(self, schema, db):
        from repro.core.employee import employee_extension

        assert db == employee_extension(schema)

    def test_insert_changes_equality(self, db):
        grown = db.insert("person", {"name": "fay", "age": 28})
        assert grown != db


class TestChainCap:
    """The delta-chain severing cap (DatabaseExtension keyword +
    REPRO_CHAIN_CAP env var, default 1024)."""

    def test_default_cap(self, db):
        from repro.core.extension import DEFAULT_CHAIN_CAP

        assert db._chain_cap == DEFAULT_CHAIN_CAP == 1024

    def test_cap_of_two_severs_and_still_audits(self, schema):
        from repro.core import check_all
        from repro.core.employee import employee_extension

        db = employee_extension(schema)
        capped = DatabaseExtension(
            schema, {e.name: db.R(e) for e in schema}, chain_cap=2)
        assert capped._chain_cap == 2
        current = capped
        rows = [
            {"name": "fay", "age": 28},
            {"name": "eva", "age": 47},
            {"name": "dee", "age": 42},
            {"name": "cas", "age": 53},
        ]
        depths = []
        for row in rows:
            current = current.insert("person", row)
            depths.append(current._depth)
        # depth never reaches the cap: 1, then severed back to 0
        assert depths == [1, 0, 1, 0]
        assert current._delta is None or current._depth < 2
        # severed states re-intern from scratch and audit identically
        report = check_all(schema, current)
        naive = current.kernel_naive()
        assert report.ok()
        assert {name: inst.n_rows for name, inst in
                current.kernel.instances.items()} == \
            {name: inst.n_rows for name, inst in naive.instances.items()}
        uncapped = db
        for row in rows:
            uncapped = uncapped.insert("person", row)
        assert current == uncapped

    def test_cap_from_environment(self, schema, monkeypatch):
        monkeypatch.setenv("REPRO_CHAIN_CAP", "3")
        db = DatabaseExtension(schema)
        assert db._chain_cap == 3
        assert db.insert("person", {"name": "fay", "age": 28})._chain_cap == 3

    def test_explicit_cap_beats_environment(self, schema, monkeypatch):
        monkeypatch.setenv("REPRO_CHAIN_CAP", "3")
        assert DatabaseExtension(schema, chain_cap=7)._chain_cap == 7

    def test_invalid_cap_rejected(self, schema):
        with pytest.raises(ValueError):
            DatabaseExtension(schema, chain_cap=0)
