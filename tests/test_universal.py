"""Unit tests for the Universal Relation baseline (repro.universal)."""

import pytest

from repro.errors import RelationError
from repro.relational import Relation
from repro.universal import (
    Placeholder,
    UniversalRelation,
    ambiguity_report,
    covering_translations,
    deletion_translations,
    insertion_translations,
    is_placeholder,
    window_side_effects,
)


@pytest.fixture
def ur(db):
    return UniversalRelation.from_extension(db)


class TestPlaceholders:
    def test_uniqueness(self):
        p1, p2 = Placeholder("a"), Placeholder("a")
        assert p1 != p2
        assert is_placeholder(p1)
        assert not is_placeholder("value")


class TestInstances:
    def test_universal_scheme(self, ur, schema):
        assert ur.scheme == schema.used_property_names()

    def test_pure_join_loses_dangling(self, ur, db):
        joined = ur.pure_join()
        # dee (person without employee tuple) cannot appear in the full join.
        assert all(t["name"] != "dee" for t in joined.tuples)

    def test_weak_instance_covers_all_base_tuples(self, ur, db):
        weak = ur.weak_instance()
        assert len(weak) == db.total_instances()

    def test_weak_instance_pads_with_placeholders(self, ur):
        weak = ur.weak_instance()
        padded = [t for t in weak.tuples if any(is_placeholder(t[a]) for a in t.schema)]
        assert padded

    def test_needs_at_least_one_relation(self):
        with pytest.raises(RelationError):
            UniversalRelation([])


class TestWindows:
    def test_window_on_person_attrs(self, ur):
        window = ur.window({"name", "age"})
        names = {t["name"] for t in window.tuples}
        assert "dee" in names  # weak instance keeps the lonely person

    def test_window_excludes_placeholder_rows(self, ur):
        window = ur.window({"name", "budget"})
        # only managers have budgets; others are placeholder-padded out.
        assert {t["name"] for t in window.tuples} == {"ann"}

    def test_window_outside_scheme(self, ur):
        with pytest.raises(RelationError):
            ur.window({"salary"})


class TestViewUpdateAmbiguity:
    def test_insertion_ambiguous(self, ur):
        translations = insertion_translations(ur, {"name": "eva", "age": 47})
        # person, employee, manager, worksfor all cover {name, age}.
        assert len(translations) == 4

    def test_axiom_model_is_unambiguous_for_same_task(self, db, schema):
        from repro.core import EntityViewType, ViewUpdate, translation_count
        from repro.relational import Tuple

        view = EntityViewType("people", {schema["person"]})
        update = ViewUpdate(view, "insert", schema["person"],
                            Tuple({"name": "eva", "age": 47}))
        assert translation_count(update, db) == 1

    def test_covering_translations_minimal(self, ur):
        covers = covering_translations(ur, {"name", "age", "location"})
        for cover in covers:
            for other in covers:
                assert not (other < cover)

    def test_insertion_fills_placeholders(self, ur):
        translations = insertion_translations(ur, {"name": "eva", "age": 47})
        for translation in translations:
            for idx, t in translation.items():
                missing = t.schema - {"name", "age"}
                for attr in missing:
                    assert is_placeholder(t[attr])

    def test_deletion_candidates(self, ur):
        candidates = deletion_translations(ur, {"name": "ann", "age": 31})
        # ann appears in person, employee, manager, worksfor.
        assert len(candidates) == 4

    def test_ambiguity_report(self, ur):
        report = ambiguity_report(ur, {"name": "ann", "age": 31})
        assert report["insertion_translations"] >= 4
        assert report["deletion_translations"] == 4


class TestSideEffects:
    def test_insertion_changes_other_windows(self, ur):
        translations = insertion_translations(ur, {"name": "eva", "age": 47})
        # Pick the translation hitting the worksfor relation (most attrs).
        widest = max(
            translations,
            key=lambda tr: max(len(t.schema) for t in tr.values()),
        )
        changed = window_side_effects(ur, {"name", "age"}, widest)
        assert changed  # at least the targeted window changes
