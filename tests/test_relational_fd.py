"""Unit tests for classical FD theory (repro.relational.fd)."""

import pytest

from repro.errors import DependencyError
from repro.relational import (
    FD,
    Relation,
    all_implied_fds,
    candidate_keys,
    closure,
    equivalent,
    holds_in,
    implies,
    is_superkey,
    minimal_cover,
    violating_pairs,
)


class TestFDValue:
    def test_equality(self):
        assert FD({"a"}, {"b"}) == FD({"a"}, {"b"})
        assert FD({"a"}, {"b"}) != FD({"b"}, {"a"})

    def test_empty_rhs_rejected(self):
        with pytest.raises(DependencyError):
            FD({"a"}, set())

    def test_trivial(self):
        assert FD({"a", "b"}, {"a"}).is_trivial()
        assert not FD({"a"}, {"b"}).is_trivial()

    def test_decompose(self):
        parts = FD({"a"}, {"b", "c"}).decompose()
        assert FD({"a"}, {"b"}) in parts and FD({"a"}, {"c"}) in parts


class TestSemantics:
    REL = Relation.from_rows(["a", "b", "c"],
                             [[1, 10, "x"], [2, 10, "x"], [1, 10, "x"]])

    def test_holds(self):
        assert holds_in(FD({"a"}, {"b"}), self.REL)
        assert holds_in(FD({"b"}, {"c"}), self.REL)

    def test_violation(self):
        rel = Relation.from_rows(["a", "b"], [[1, 10], [1, 20]])
        assert not holds_in(FD({"a"}, {"b"}), rel)
        assert len(violating_pairs(FD({"a"}, {"b"}), rel)) == 1

    def test_schema_check(self):
        with pytest.raises(DependencyError):
            holds_in(FD({"zzz"}, {"a"}), self.REL)

    def test_empty_relation_satisfies_everything(self):
        rel = Relation({"a", "b"})
        assert holds_in(FD({"a"}, {"b"}), rel)


class TestClosure:
    FDS = [FD({"a"}, {"b"}), FD({"b"}, {"c"}), FD({"c", "d"}, {"e"})]

    def test_transitive_chain(self):
        assert closure({"a"}, self.FDS) == frozenset({"a", "b", "c"})

    def test_needs_both_lhs_parts(self):
        assert "e" not in closure({"c"}, self.FDS)
        assert "e" in closure({"c", "d"}, self.FDS)

    def test_implies(self):
        assert implies(self.FDS, FD({"a"}, {"c"}))
        assert not implies(self.FDS, FD({"c"}, {"a"}))

    def test_equivalent(self):
        other = [FD({"a"}, {"b", "c"})]
        base = [FD({"a"}, {"b"}), FD({"b"}, {"c"})]
        assert not equivalent(other, [FD({"a"}, {"b"})])
        assert equivalent(base, [FD({"a"}, {"b", "c"}), FD({"b"}, {"c"})])


class TestMinimalCover:
    def test_removes_redundant_fd(self):
        fds = [FD({"a"}, {"b"}), FD({"b"}, {"c"}), FD({"a"}, {"c"})]
        cover = minimal_cover(fds)
        assert FD({"a"}, {"c"}) not in cover
        assert equivalent(cover, fds)

    def test_reduces_lhs(self):
        fds = [FD({"a"}, {"b"}), FD({"a", "b"}, {"c"})]
        cover = minimal_cover(fds)
        assert FD({"a"}, {"c"}) in cover

    def test_singleton_rhs(self):
        cover = minimal_cover([FD({"a"}, {"b", "c"})])
        assert all(len(fd.rhs) == 1 for fd in cover)


class TestKeys:
    def test_single_key(self):
        fds = [FD({"a"}, {"b"}), FD({"b"}, {"c"})]
        keys = candidate_keys({"a", "b", "c"}, fds)
        assert keys == frozenset({frozenset({"a"})})

    def test_multiple_keys(self):
        fds = [FD({"a"}, {"b"}), FD({"b"}, {"a"})]
        keys = candidate_keys({"a", "b"}, fds)
        assert keys == frozenset({frozenset({"a"}), frozenset({"b"})})

    def test_no_fds_key_is_everything(self):
        keys = candidate_keys({"a", "b"}, [])
        assert keys == frozenset({frozenset({"a", "b"})})

    def test_superkey(self):
        fds = [FD({"a"}, {"b"})]
        assert is_superkey({"a"}, {"a", "b"}, fds)
        assert not is_superkey({"b"}, {"a", "b"}, fds)


class TestAllImplied:
    def test_contains_trivial_and_derived(self):
        fds = [FD({"a"}, {"b"})]
        implied = all_implied_fds({"a", "b"}, fds)
        assert FD({"a"}, {"a"}) in implied
        assert FD({"a"}, {"b"}) in implied
        assert FD({"b"}, {"a"}) not in implied
