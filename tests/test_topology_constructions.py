"""Unit tests for subspace/product/sum/quotient (repro.topology.constructions)."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    FiniteSpace,
    disjoint_union,
    product,
    quotient,
    subspace,
    topology_from_subbase,
)

SIERPINSKI = FiniteSpace("ab", [set(), {"a"}, {"a", "b"}])


class TestSubspace:
    def test_trace_topology(self):
        chain = topology_from_subbase("abc", [{"a"}, {"a", "b"}])
        sub = subspace(chain, {"b", "c"})
        assert sub.opens == frozenset(
            {frozenset(), frozenset({"b"}), frozenset({"b", "c"})}
        )

    def test_full_subspace_is_same(self):
        assert subspace(SIERPINSKI, SIERPINSKI.points) == SIERPINSKI

    def test_rejects_stray_points(self):
        with pytest.raises(TopologyError):
            subspace(SIERPINSKI, {"z"})

    def test_subspace_of_discrete_is_discrete(self):
        sub = subspace(FiniteSpace.discrete("abcd"), {"a", "b"})
        assert len(sub.opens) == 4


class TestProduct:
    def test_carrier_is_pairs(self):
        p = product(SIERPINSKI, SIERPINSKI)
        assert ("a", "b") in p.points
        assert len(p) == 4

    def test_rectangles_open(self):
        p = product(SIERPINSKI, SIERPINSKI)
        assert p.is_open({("a", "a")})
        assert p.is_open({("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")})

    def test_projections_continuous(self):
        from repro.topology import SpaceMap

        p = product(SIERPINSKI, SIERPINSKI)
        fst = SpaceMap(p, SIERPINSKI, {pt: pt[0] for pt in p.points})
        snd = SpaceMap(p, SIERPINSKI, {pt: pt[1] for pt in p.points})
        assert fst.is_continuous() and snd.is_continuous()

    def test_product_with_discrete(self):
        p = product(FiniteSpace.discrete("xy"), SIERPINSKI)
        # 2 discrete points x sierpinski: opens = products of opens closed
        # under union; check a non-rectangle union is present.
        u = frozenset({("x", "a"), ("y", "a"), ("y", "b")})
        assert p.is_open(u)


class TestDisjointUnion:
    def test_carrier_tagged(self):
        s = disjoint_union(SIERPINSKI, SIERPINSKI)
        assert (0, "a") in s.points and (1, "b") in s.points
        assert len(s) == 4

    def test_each_summand_open(self):
        s = disjoint_union(SIERPINSKI, SIERPINSKI)
        assert s.is_open({(0, "a"), (0, "b")})
        assert s.is_open({(1, "a"), (1, "b")})

    def test_disconnected(self):
        s = disjoint_union(SIERPINSKI, SIERPINSKI)
        assert not s.is_connected()


class TestQuotient:
    def test_collapse_indistinguishable(self):
        space = FiniteSpace("abc", [set(), {"a"}, {"a", "b", "c"}])
        q = quotient(space, {"a": "open", "b": "rest", "c": "rest"})
        assert len(q) == 2
        assert q.is_open({"open"})

    def test_rejects_partial_blocks(self):
        with pytest.raises(TopologyError):
            quotient(SIERPINSKI, {"a": 0})

    def test_quotient_map_continuity(self):
        from repro.topology import SpaceMap

        space = FiniteSpace("abc", [set(), {"a"}, {"a", "b", "c"}])
        blocks = {"a": "open", "b": "rest", "c": "rest"}
        q = quotient(space, blocks)
        f = SpaceMap(space, q, blocks)
        assert f.is_continuous()
