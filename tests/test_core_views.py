"""Unit tests for entity view types and view updates (section 2)."""

import pytest

from repro.core import (
    EntityViewType,
    ViewInstance,
    ViewUpdate,
    decompose_presented_tuple,
    translation_count,
)
from repro.errors import ViewError
from repro.relational import Tuple


@pytest.fixture
def staffing_view(schema):
    return EntityViewType("staffing", {schema["employee"], schema["department"]})


class TestViewType:
    def test_view_axiom_valid(self, schema, staffing_view):
        staffing_view.validate(schema)

    def test_view_axiom_rejects_foreign_member(self, schema):
        from repro.core import EntityType

        alien = EntityType("alien", {"name"})
        view = EntityViewType("bad", {alien})
        with pytest.raises(ViewError):
            view.validate(schema)

    def test_empty_view_rejected(self):
        with pytest.raises(ViewError):
            EntityViewType("empty", set())

    def test_attributes_union(self, staffing_view):
        assert staffing_view.attributes() == frozenset(
            {"name", "age", "depname", "location"}
        )


class TestViewInstance:
    def test_member_relations(self, db, schema, staffing_view):
        instance = ViewInstance(staffing_view, db)
        assert instance.member_relation("employee") == db.R("employee")
        assert instance.member_relation(schema["department"]) == db.R("department")

    def test_non_member_rejected(self, db, schema, staffing_view):
        instance = ViewInstance(staffing_view, db)
        with pytest.raises(ViewError):
            instance.member_relation("manager")

    def test_presented_relation_is_join(self, db, staffing_view):
        presented = ViewInstance(staffing_view, db).presented_relation()
        assert presented.schema == staffing_view.attributes()
        assert len(presented) == 3  # one row per employee, dept joined


class TestViewUpdate:
    def test_insert_translates_uniquely(self, db, schema, staffing_view):
        update = ViewUpdate(
            staffing_view, "insert", schema["employee"],
            Tuple({"name": "eva", "age": 47, "depname": "sales"}),
        )
        assert translation_count(update, db) == 1
        updated = update.translate(db)
        assert {"name": "eva", "age": 47, "depname": "sales"} in updated.R("employee")
        # propagation kept containment intact:
        assert updated.satisfies_containment()

    def test_delete_translates_uniquely(self, db, schema, staffing_view):
        update = ViewUpdate(
            staffing_view, "delete", schema["employee"],
            Tuple({"name": "cas", "age": 28, "depname": "sales"}),
        )
        updated = update.translate(db)
        assert {"name": "cas", "age": 28, "depname": "sales"} not in updated.R("employee")
        assert updated.satisfies_containment()

    def test_member_must_belong_to_view(self, db, schema, staffing_view):
        update = ViewUpdate(
            staffing_view, "insert", schema["manager"],
            Tuple({"name": "eva", "age": 47, "depname": "sales", "budget": 100}),
        )
        with pytest.raises(ViewError):
            update.translate(db)

    def test_row_schema_checked(self, db, schema, staffing_view):
        update = ViewUpdate(
            staffing_view, "insert", schema["employee"], Tuple({"name": "eva"}),
        )
        with pytest.raises(ViewError):
            update.translate(db)

    def test_unknown_kind_rejected(self, db, schema, staffing_view):
        update = ViewUpdate(
            staffing_view, "upsert", schema["employee"],
            Tuple({"name": "eva", "age": 47, "depname": "sales"}),
        )
        with pytest.raises(ViewError):
            update.translate(db)


class TestDecomposition:
    def test_presented_tuple_decomposes_uniquely(self, schema, staffing_view):
        row = {"name": "ann", "age": 31, "depname": "sales", "location": "amsterdam"}
        parts = decompose_presented_tuple(staffing_view, row)
        assert parts[schema["employee"]] == Tuple(
            {"name": "ann", "age": 31, "depname": "sales"}
        )
        assert parts[schema["department"]] == Tuple(
            {"depname": "sales", "location": "amsterdam"}
        )

    def test_missing_attributes_detected(self, staffing_view):
        with pytest.raises(ViewError):
            decompose_presented_tuple(staffing_view, {"name": "ann"})

    def test_roundtrip_through_presented_join(self, db, schema, staffing_view):
        """Every presented row decomposes back onto stored instances."""
        presented = ViewInstance(staffing_view, db).presented_relation()
        for row in presented.tuples:
            parts = decompose_presented_tuple(staffing_view, row)
            assert parts[schema["employee"]] in db.R("employee")
            assert parts[schema["department"]] in db.R("department")
