"""The running example: every constant matches the paper's text."""

from repro.core import SpecialisationStructure, check_all
from repro.core.employee import (
    ATTRIBUTE_SETS,
    PAPER_CONSTRUCTED,
    PAPER_SUBBASE,
    employee_constraints,
    employee_extension,
    employee_fd,
    employee_schema,
)


class TestSchemaConstants:
    def test_A_and_E_match_paper(self, schema):
        assert schema.used_property_names() == frozenset(
            {"name", "depname", "budget", "age", "location"}
        )
        assert {e.name for e in schema} == {
            "employee", "person", "department", "manager", "worksfor",
        }

    def test_attribute_sets_match_paper_table(self, schema):
        for name, attrs in ATTRIBUTE_SETS.items():
            assert schema[name].attributes == attrs

    def test_subbase_constants_consistent(self):
        assert PAPER_SUBBASE | PAPER_CONSTRUCTED == set(ATTRIBUTE_SETS)


class TestExtension:
    def test_consistent(self, db):
        assert db.is_consistent()

    def test_all_axioms(self, schema, db, constraints):
        report = check_all(schema, db, constraints=constraints.constraints)
        assert report.ok()

    def test_constraints_hold(self, db, constraints):
        assert constraints.holds(db)

    def test_fd_holds(self, db, worksfor_fd):
        from repro.core import holds

        assert holds(worksfor_fd, db)

    def test_each_manager_is_an_employee(self, db, schema):
        """The sentence the paper uses to motivate subset dependencies."""
        managers = db.pi("manager", "employee")
        assert managers.is_subset_of(db.R("employee"))

    def test_worksfor_derivable_from_contributors(self, db):
        joined = db.contributor_join("worksfor")
        assert db.R("worksfor") == joined


class TestFreshness:
    def test_builders_return_fresh_objects(self):
        assert employee_schema() is not employee_schema()
        assert employee_extension() == employee_extension()

    def test_fd_anchored_to_given_schema(self):
        schema = employee_schema()
        fd = employee_fd(schema)
        assert fd.context is schema["worksfor"]

    def test_constraints_anchored(self):
        schema = employee_schema()
        constraints = employee_constraints(schema)
        assert constraints.schema is schema

    def test_specialisation_space_has_expected_size(self, schema):
        space = SpecialisationStructure(schema).space
        # {}, {m}, {w}, {m,w}, {d,w}, {d,m,w}, {e,m,w}, {e,m,w,d},
        # {p,e,m,w}, {p,e,m,w,d}=E ... enumerate programmatically instead:
        assert len(space.points) == 5
        assert len(space.opens) >= 8
