"""Unit tests for the entity-level Armstrong engine (section 5.2)."""

import pytest

from repro.core import ALL_RULES, ArmstrongEngine, EntityFD
from repro.errors import DependencyError


@pytest.fixture
def engine(schema, worksfor_fd):
    return ArmstrongEngine(schema, [worksfor_fd])


class TestRuleA1:
    def test_reflexivity_seeded(self, schema):
        engine = ArmstrongEngine(schema, [])
        fd = EntityFD(schema["manager"], schema["person"], schema["manager"])
        assert engine.derivable(fd)
        assert engine.derivation(fd).rule == "A1"

    def test_self_determination(self, schema):
        engine = ArmstrongEngine(schema, [])
        fd = EntityFD(schema["person"], schema["person"], schema["person"])
        assert engine.derivable(fd)


class TestPropagation:
    def test_nucleus_propagates_to_specialisations(self, schema):
        """fd(employee, person, employee) propagates to manager's context."""
        engine = ArmstrongEngine(schema, [])
        propagated = EntityFD(schema["employee"], schema["person"], schema["manager"])
        derivation = engine.derivation(propagated)
        assert derivation is not None
        rules_used = {derivation.rule}
        assert rules_used <= {"propagation", "A1", "A2-decomposition", "A3"}

    def test_premise_propagates(self, schema):
        """A premise in context employee reaches context manager."""
        premise = EntityFD(schema["person"], schema["employee"], schema["employee"])
        engine = ArmstrongEngine(schema, [premise])
        assert engine.derivable(
            EntityFD(schema["person"], schema["employee"], schema["manager"])
        )


class TestA3Transitivity:
    def test_chain(self, schema):
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["employee"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(schema, [p1, p2])
        conclusion = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        derivation = engine.derivation(conclusion)
        assert derivation is not None

    def test_no_cross_context_transitivity(self, schema):
        """A3 only combines dependencies within one context."""
        p1 = EntityFD(schema["person"], schema["employee"], schema["employee"])
        p2 = EntityFD(schema["employee"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(
            schema, [p1, p2], rules=frozenset({"A3"})
        )
        target = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        assert not engine.derivable(target)


class TestA2:
    def test_decomposition(self, schema, worksfor_fd):
        """fd(employee, department, worksfor) has no proper G-decomposition
        below department; check a constructed case instead: determining
        worksfor from itself decomposes to all its generalisations."""
        engine = ArmstrongEngine(schema, [])
        for g in ("person", "employee", "department"):
            fd = EntityFD(schema["worksfor"], schema[g], schema["worksfor"])
            assert engine.derivable(fd)

    def test_union_via_contributors(self, schema):
        """Determining employee and department determines worksfor."""
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(schema, [p1, p2])
        union_fd = EntityFD(schema["person"], schema["worksfor"], schema["worksfor"])
        derivation = engine.derivation(union_fd)
        assert derivation is not None
        assert derivation.rule == "A2-union"
        assert len(derivation.premises) == 2

    def test_union_disabled(self, schema):
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(
            schema, [p1, p2], rules=ALL_RULES - {"A2-union"}
        )
        union_fd = EntityFD(schema["person"], schema["worksfor"], schema["worksfor"])
        assert not engine.derivable(union_fd)

    def test_decomposition_redundant_given_other_rules(self, schema, worksfor_fd):
        """A2-decomposition adds nothing beyond A1+A3+propagation."""
        full = ArmstrongEngine(schema, [worksfor_fd])
        reduced = ArmstrongEngine(
            schema, [worksfor_fd], rules=ALL_RULES - {"A2-decomposition"}
        )
        assert set(full.closure()) == set(reduced.closure())


class TestEngineBasics:
    def test_unknown_rule_rejected(self, schema):
        with pytest.raises(DependencyError):
            ArmstrongEngine(schema, [], rules=frozenset({"A9"}))

    def test_premise_recorded(self, engine, worksfor_fd):
        derivation = engine.derivation(worksfor_fd)
        assert derivation.rule == "premise"
        assert derivation.premises == ()

    def test_closure_cached(self, engine):
        assert engine.closure() is engine.closure()

    def test_statement_space_well_typed(self, engine, schema):
        for fd in engine.statement_space():
            fd.validate(schema)

    def test_derived_in_context(self, engine, schema, worksfor_fd):
        in_wf = engine.derived_in_context(schema["worksfor"])
        assert worksfor_fd in in_wf
        assert all(fd.context.name == "worksfor" for fd in in_wf)

    def test_nontrivial_derived(self, engine, worksfor_fd):
        nontrivial = engine.nontrivial_derived()
        assert worksfor_fd in nontrivial
        assert all(not fd.is_trivial() for fd in nontrivial)


class TestDerivationTrees:
    def test_render_contains_rule_names(self, schema):
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["employee"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(schema, [p1, p2])
        conclusion = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        text = engine.derivation(conclusion).render()
        assert "premise" in text

    def test_depth_and_size(self, schema):
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["employee"], schema["department"], schema["worksfor"])
        engine = ArmstrongEngine(schema, [p1, p2])
        conclusion = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        derivation = engine.derivation(conclusion)
        assert derivation.size() >= derivation.depth() >= 1
