"""Unit tests for semantic implication and soundness/completeness (section 5.2)."""

import random

import pytest

from repro.core import (
    ArmstrongEngine,
    EntityFD,
    a2_union_soundness_example,
    agreement_report,
    attribute_theory,
    completeness_gap_example,
    counterexample_extension,
    is_intersection_closed,
    semantically_implies,
)
from repro.core.fd import holds


class TestAttributeTheory:
    def test_premises_from_generalising_contexts_included(self, schema, worksfor_fd):
        theory = attribute_theory(schema, [worksfor_fd], schema["worksfor"])
        lhs_sets = {fd.lhs for fd in theory}
        assert schema["employee"].attributes in lhs_sets

    def test_extension_fds_included(self, schema):
        theory = attribute_theory(schema, [], schema["manager"])
        # manager's contributors: employee; extension fd A_employee -> A_manager.
        assert any(
            fd.lhs == schema["employee"].attributes
            and fd.rhs == schema["manager"].attributes
            for fd in theory
        )

    def test_extension_fds_excludable(self, schema):
        theory = attribute_theory(schema, [], schema["manager"],
                                  with_extension_axiom=False)
        assert not theory


class TestSemanticImplication:
    def test_trivial_always_implied(self, schema):
        fd = EntityFD(schema["manager"], schema["employee"], schema["manager"])
        assert semantically_implies(schema, [], fd)

    def test_premise_implied(self, schema, worksfor_fd):
        assert semantically_implies(schema, [worksfor_fd], worksfor_fd)

    def test_transitive_consequence(self, schema):
        p1 = EntityFD(schema["person"], schema["employee"], schema["worksfor"])
        p2 = EntityFD(schema["employee"], schema["department"], schema["worksfor"])
        conclusion = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        assert semantically_implies(schema, [p1, p2], conclusion)

    def test_non_consequence(self, schema):
        candidate = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        assert not semantically_implies(schema, [], candidate)


class TestCounterexample:
    def test_none_for_implied(self, schema, worksfor_fd):
        assert counterexample_extension(schema, [worksfor_fd], worksfor_fd) is None

    def test_witness_for_unimplied(self, schema):
        candidate = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        witness = counterexample_extension(schema, [], candidate)
        assert witness is not None
        assert witness.is_consistent()
        assert not holds(candidate, witness)

    def test_person_determines_department_via_extension_axiom(self, schema, worksfor_fd):
        """CO_employee = {person}, so the Extension Axiom makes a person an
        employee in at most one way; with the worksfor premise, person then
        determines department — no counterexample exists."""
        candidate = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        assert semantically_implies(schema, [worksfor_fd], candidate)
        assert counterexample_extension(schema, [worksfor_fd], candidate) is None
        from repro.core import ArmstrongEngine

        assert ArmstrongEngine(schema, [worksfor_fd]).derivable(candidate)

    def test_witness_satisfies_premises(self, schema, worksfor_fd):
        candidate = EntityFD(schema["department"], schema["person"], schema["worksfor"])
        witness = counterexample_extension(schema, [worksfor_fd], candidate)
        assert witness is not None
        assert holds(worksfor_fd, witness)
        assert not holds(candidate, witness)

    def test_witness_has_two_context_tuples(self, schema):
        candidate = EntityFD(schema["person"], schema["department"], schema["worksfor"])
        witness = counterexample_extension(schema, [], candidate)
        assert len(witness.R("worksfor")) == 2


class TestSoundnessAndCompleteness:
    def test_employee_schema_agrees_fully(self, schema, worksfor_fd):
        report = agreement_report(schema, [worksfor_fd])
        assert report["agreement_rate"] == 1.0
        assert not report["sound_violations"]
        assert not report["completeness_gap"]

    def test_soundness_never_violated_randomly(self, schema, rng):
        """Derivable implies semantically valid, across random premises."""
        from repro.workloads import random_premises

        for seed in range(10):
            local = random.Random(seed)
            premises = random_premises(local, schema, count=3)
            report = agreement_report(schema, premises)
            assert not report["sound_violations"], (seed, premises)

    def test_gap_example(self):
        schema, premises, candidate = completeness_gap_example()
        engine = ArmstrongEngine(schema, premises)
        assert semantically_implies(schema, premises, candidate)
        assert not engine.derivable(candidate)
        assert not is_intersection_closed(schema)

    def test_intersection_closing_restores_completeness(self):
        from repro.workloads import intersection_close

        schema, premises, candidate = completeness_gap_example()
        closed = intersection_close(schema)
        assert is_intersection_closed(closed)
        # Re-anchor the FDs in the closed schema (same names survive).
        premises2 = [
            EntityFD(closed[p.determinant.name], closed[p.dependent.name],
                     closed[p.context.name])
            for p in premises
        ]
        candidate2 = EntityFD(closed[candidate.determinant.name],
                              closed[candidate.dependent.name],
                              closed[candidate.context.name])
        engine = ArmstrongEngine(closed, premises2)
        assert engine.derivable(candidate2)
        report = agreement_report(closed, premises2)
        assert report["completeness_gap"] == []

    def test_a2_union_needs_extension_axiom(self):
        schema, premises, derived = a2_union_soundness_example()
        engine = ArmstrongEngine(schema, premises)
        assert engine.derivable(derived)
        assert semantically_implies(schema, premises, derived,
                                    with_extension_axiom=True)
        assert not semantically_implies(schema, premises, derived,
                                        with_extension_axiom=False)


class TestIntersectionClosedPredicate:
    def test_employee_schema_not_closed_yet_gap_free(self, schema, worksfor_fd):
        """Sufficient, not necessary: employee intersect department =
        {depname} is no entity type, yet the natural premises show no gap."""
        assert not is_intersection_closed(schema)
        report = agreement_report(schema, [worksfor_fd])
        assert report["completeness_gap"] == []

    def test_gap_schema_open(self):
        schema, _, _ = completeness_gap_example()
        assert not is_intersection_closed(schema)

    def test_closure_produces_closed_schema(self):
        from repro.workloads import intersection_close

        schema, _, _ = completeness_gap_example()
        assert is_intersection_closed(intersection_close(schema))
