"""Property-based tests for the section-6 constraint families (MVD/JD)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational import (
    FD,
    MVD,
    Relation,
    holds_in as fd_holds_in,
    is_lossless_decomposition,
    mvd_as_binary_jd,
    swap_closure,
)
from repro.relational.jd import holds_in as jd_holds_in
from repro.relational.mvd import holds_in as mvd_holds_in

U = frozenset({"a", "b", "c"})

relations = st.lists(
    st.fixed_dictionaries({
        "a": st.integers(0, 2),
        "b": st.integers(0, 2),
        "c": st.integers(0, 2),
    }),
    max_size=6,
).map(lambda rows: Relation(U, rows))

mvds = st.tuples(
    st.sets(st.sampled_from("abc"), min_size=1, max_size=2),
    st.sets(st.sampled_from("abc"), min_size=1, max_size=2),
).map(lambda lr: MVD(lr[0], lr[1], U))


class TestMVDProperties:
    @given(rel=relations, mvd=mvds)
    @settings(max_examples=120, deadline=None)
    def test_complementation_rule(self, rel, mvd):
        assert mvd_holds_in(mvd, rel) == mvd_holds_in(mvd.complement(), rel)

    @given(rel=relations, mvd=mvds)
    @settings(max_examples=120, deadline=None)
    def test_swap_closure_is_closure(self, rel, mvd):
        closed = swap_closure(mvd, rel)
        assert rel.tuples <= closed.tuples
        assert mvd_holds_in(mvd, closed)
        # idempotent:
        assert swap_closure(mvd, closed) == closed

    @given(rel=relations)
    @settings(max_examples=120, deadline=None)
    def test_fd_implies_mvd(self, rel):
        fd = FD({"a"}, {"b"})
        if fd_holds_in(fd, rel):
            assert mvd_holds_in(MVD({"a"}, {"b"}, U), rel)

    @given(rel=relations, mvd=mvds)
    @settings(max_examples=120, deadline=None)
    def test_trivial_mvds_always_hold(self, rel, mvd):
        if mvd.is_trivial():
            assert mvd_holds_in(mvd, rel)


class TestJDProperties:
    @given(rel=relations, mvd=mvds)
    @settings(max_examples=120, deadline=None)
    def test_fagin_correspondence(self, rel, mvd):
        """MVD == its binary JD == losslessness of the induced split."""
        jd = mvd_as_binary_jd(mvd)
        verdict = mvd_holds_in(mvd, rel)
        assert jd_holds_in(jd, rel) == verdict
        parts = list(jd.components)
        assert is_lossless_decomposition(rel, parts) == verdict

    @given(rel=relations)
    @settings(max_examples=80, deadline=None)
    def test_singleton_jd_trivially_holds(self, rel):
        from repro.relational import JoinDependency

        assert jd_holds_in(JoinDependency([U], U), rel)
