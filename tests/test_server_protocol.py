"""Wire-protocol tests: frame codec round trips and a malformed-frame
fuzz sweep against a live server.

Two layers under test.  The sans-IO layer (``repro.io.encode_frame`` /
``FrameDecoder``) must round-trip every JSON object message regardless
of how the byte stream is chunked, and must classify bad input: a
payload that *delimits* but does not *parse* costs an error and nothing
else, while an oversized declared length desynchronises the stream and
poisons the decoder.  The live layer (``StoreServer``) must keep that
classification under fire: the fuzz sweep throws hundreds of malformed
frames — truncated length prefixes, truncated payloads, oversized
declarations, invalid JSON, non-object payloads, unknown ops — and the
accept loop must survive every one of them, with recoverable cases
answered by a typed error on the *same* connection.
"""

from __future__ import annotations

import json
import random
import socket
import struct

import pytest

from repro.errors import (
    CommitRejected,
    ExtensionError,
    ProtocolError,
    StoreError,
    TransactionConflict,
)
from repro.io import FRAME_HEADER, encode_frame, FrameDecoder
from repro.server import StoreClient, StoreServer
from repro.server.protocol import (
    error_payload,
    ok_response,
    raise_for_error,
    validate_request,
)
from repro.store import StoreEngine
from repro.workloads.sessions import manager_stream, serving_state

from generators import random_frame_message, random_json_value

SEEDS = range(40)
MESSAGES_PER_SEED = 5  # 40 x 5 = 200 seeded round-trip cases


# ----------------------------------------------------------------------
# sans-IO codec
# ----------------------------------------------------------------------
class TestFrameRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_messages_survive_arbitrary_chunking(self, seed):
        """Encode a batch of random messages, replay the byte stream in
        random-sized dribbles, and require the exact messages back in
        order — the core framing property."""
        rng = random.Random(1000 + seed)
        messages = [random_frame_message(rng)
                    for _ in range(MESSAGES_PER_SEED)]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        i = 0
        while i < len(stream):
            step = rng.randint(1, 17)
            decoded.extend(decoder.feed(stream[i:i + step]))
            i += step
        assert decoded == messages
        assert decoder.pending_bytes == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_value_payload_fidelity(self, seed):
        """Every JSON value shape survives inside a message field."""
        rng = random.Random(2000 + seed)
        message = {"value": random_json_value(rng)}
        decoder = FrameDecoder()
        (out,) = decoder.feed(encode_frame(message))
        assert out == message

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == {"a": 1}

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            encode_frame([1, 2, 3])

    def test_encode_rejects_unencodable(self):
        with pytest.raises(ProtocolError):
            encode_frame({"x": object()})

    def test_encode_rejects_oversize(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"x": "y" * 64}, max_bytes=32)


class TestFrameDecoderErrors:
    def test_bad_json_payload_raises_but_decoder_survives(self):
        decoder = FrameDecoder()
        bad = b"{nope"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decoder.feed(FRAME_HEADER.pack(len(bad)) + bad)
        (out,) = decoder.feed(encode_frame({"ok": 1}))
        assert out == {"ok": 1}

    def test_non_object_payload_raises_but_decoder_survives(self):
        decoder = FrameDecoder()
        payload = b"[1, 2]"
        with pytest.raises(ProtocolError, match="JSON object"):
            decoder.feed(FRAME_HEADER.pack(len(payload)) + payload)
        assert decoder.feed(encode_frame({"ok": 2})) == [{"ok": 2}]

    def test_messages_before_a_bad_frame_are_not_lost(self):
        """A chunk carrying [good, bad] raises on the bad frame but the
        good message is delivered by the next feed call."""
        decoder = FrameDecoder()
        bad = b"!!!"
        chunk = encode_frame({"first": True}) + \
            FRAME_HEADER.pack(len(bad)) + bad
        with pytest.raises(ProtocolError):
            decoder.feed(chunk)
        assert decoder.feed() == [{"first": True}]

    def test_oversize_declaration_poisons_the_decoder(self):
        decoder = FrameDecoder(max_bytes=64)
        with pytest.raises(ProtocolError, match="frame limit"):
            decoder.feed(FRAME_HEADER.pack(1 << 20))
        # ... and permanently: the stream offset is untrustworthy.
        with pytest.raises(ProtocolError, match="desynchronised"):
            decoder.feed(encode_frame({"ok": 1}))

    def test_pending_bytes_tracks_partial_frames(self):
        decoder = FrameDecoder()
        frame = encode_frame({"k": "v"})
        decoder.feed(frame[:5])
        assert decoder.pending_bytes == 5
        decoder.feed(frame[5:])
        assert decoder.pending_bytes == 0


# ----------------------------------------------------------------------
# the exception bridge
# ----------------------------------------------------------------------
class TestErrorBridge:
    def test_commit_rejected_round_trips_findings(self):
        findings = ({"check": "containment", "relation": "worksfor",
                     "witnesses": [{"pname": 1}]},)
        exc = CommitRejected("violated", findings)
        payload = error_payload(exc)
        assert payload["code"] == "commit-rejected"
        with pytest.raises(CommitRejected) as caught:
            raise_for_error(payload)
        assert caught.value.findings == findings

    def test_conflict_round_trips_keys(self):
        exc = TransactionConflict(
            "lost the race",
            keys=(("manager", frozenset({"pname"}), "row"),))
        payload = error_payload(exc)
        assert payload["code"] == "conflict"
        with pytest.raises(TransactionConflict) as caught:
            raise_for_error(payload)
        assert caught.value.keys == (("manager", ["pname"], "'row'"),)

    @pytest.mark.parametrize("exc, code", [
        (StoreError("gone"), "store-error"),
        (ExtensionError("bad tuple"), "extension-error"),
        (ProtocolError("bad frame"), "protocol-error"),
        (ValueError("anything else"), "store-error"),
    ])
    def test_code_mapping(self, exc, code):
        payload = error_payload(exc)
        assert payload["code"] == code
        with pytest.raises(Exception):
            raise_for_error(payload)

    def test_validate_request(self):
        assert validate_request({"op": "ping", "id": 7}) == (7, "ping")
        assert validate_request({"op": "ping"}) == (None, "ping")
        with pytest.raises(ProtocolError, match="no 'op'"):
            validate_request({"id": 1})
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "frobnicate"})
        with pytest.raises(ProtocolError, match="scalar"):
            validate_request({"op": "ping", "id": {"a": 1}})

    def test_ok_response_echoes_id(self):
        assert ok_response("r1", pong=True) == \
            {"id": "r1", "ok": True, "pong": True}


# ----------------------------------------------------------------------
# a live server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    schema, db, constraints = serving_state(10)
    engine = StoreEngine(db, constraints)
    with StoreServer(engine, max_frame_bytes=1 << 16) as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = StoreClient(*server.address)
    yield c
    c.close()


class TestServerOps:
    def test_hello_describes_the_store(self, client):
        info = client.server_info
        assert info["role"] == "primary"
        assert info["relations"] == [
            "dept", "manager", "office", "person", "worksfor"]
        assert "main" in info["branches"]

    def test_hello_unknown_branch_errors(self, server):
        with StoreClient(*server.address, hello=False) as c:
            with pytest.raises(StoreError, match="branch"):
                c.hello("nonesuch")
            assert c.ping()  # connection survives the refusal

    def test_ping(self, client):
        assert client.ping() is True

    def test_begin_stage_commit_read(self, client):
        row = manager_stream(10, 1)[0]
        txn = client.begin()
        assert txn.base.startswith("v")
        assert txn.insert("manager", row) == 1
        result = txn.commit()
        assert result["branch"] == "main"
        rows, vid = client.read_at("manager", at=result["version"])
        assert row in rows and vid == result["version"]

    def test_commit_rejection_carries_findings(self, client):
        txn = client.begin()
        txn.stage([{"op": "insert", "relation": "worksfor",
                    "row": {"pname": 9, "dname": 8, "budget": 50,
                            "role": 1},
                    "propagate": False}])
        with pytest.raises(CommitRejected) as caught:
            txn.commit()
        assert caught.value.findings  # witness findings crossed the wire
        assert any("witnesses" in f for f in caught.value.findings)

    def test_commit_consumes_the_handle(self, client):
        txn = client.begin()
        txn.commit()  # empty txn: no-op commit
        with pytest.raises(StoreError, match="unknown transaction"):
            client.commit(txn.handle)

    def test_failed_stage_leaves_txn_as_it_was(self, client):
        row = manager_stream(10, 2)[1]
        txn = client.begin()
        txn.insert("manager", row)
        with pytest.raises((StoreError, ProtocolError, ExtensionError)):
            txn.stage([{"op": "insert", "relation": "manager",
                        "row": {"pname": row["pname"]}},  # wrong schema
                       {"op": "insert", "relation": "manager"}])
        # the surviving buffered op still commits
        result = txn.commit()
        assert row in client.read("manager", at=result["version"])

    def test_stage_unknown_handle(self, client):
        with pytest.raises(StoreError, match="unknown transaction"):
            client.stage("t999", [])

    def test_read_unknown_relation_errors_cleanly(self, client):
        with pytest.raises((StoreError, ExtensionError)):
            client.read("nonesuch")
        assert client.ping()

    def test_read_unknown_version_errors_cleanly(self, client):
        with pytest.raises(StoreError, match="unknown version"):
            client.read("dept", at="v9999")
        assert client.ping()

    def test_branch_and_read_at_branch(self, client):
        head = client.status()["branches"]["main"]
        out = client.create_branch("proto-dev")
        assert out == {"branch": "proto-dev", "at": head}
        assert client.read("dept", branch="proto-dev") == \
            client.read("dept", at=head)

    def test_status_gauges(self, client):
        status = client.status()
        assert status["role"] == "primary"
        assert status["connections"] >= 1
        assert status["max_inflight_commits"] >= 1

    def test_request_id_is_echoed_verbatim(self, server):
        with StoreClient(*server.address, hello=False) as c:
            for rid in ("abc", 0, None, 3.5):
                c.send_message({"id": rid, "op": "ping"})
                response = c.recv_message()
                assert response["id"] == rid and response["ok"]

    def test_pipelined_requests_answer_in_order(self, server):
        with StoreClient(*server.address, hello=False) as c:
            for rid in range(5):
                c.send_message({"id": rid, "op": "ping"})
            for rid in range(5):
                assert c.recv_message()["id"] == rid


class TestConnectionBounds:
    def test_over_capacity_connection_is_refused(self):
        schema, db, constraints = serving_state(6)
        with StoreServer(StoreEngine(db, constraints),
                         max_connections=2) as srv:
            a = StoreClient(*srv.address)
            b = StoreClient(*srv.address)
            with StoreClient(*srv.address, hello=False) as c:
                response = c.recv_message()
                assert not response["ok"]
                assert response["error"]["code"] == "overloaded"
            a.close()
            # capacity freed: the next connection is served
            for _ in range(100):
                try:
                    d = StoreClient(*srv.address)
                    break
                except (StoreError, ProtocolError):
                    continue
            assert d.ping()
            d.close()
            b.close()


# ----------------------------------------------------------------------
# the malformed-frame fuzz sweep
# ----------------------------------------------------------------------
FUZZ_CASES = 240

#: Categories that end the connection (by design or by the client
#: hanging up mid-frame); everything else must be answered by a typed
#: error on the same connection.
FATAL = {"truncated-header", "truncated-payload", "oversize"}
CATEGORIES = tuple(FATAL) + (
    "bad-json", "bad-utf8", "non-object", "missing-op", "unknown-op",
    "bad-id", "bad-field-types")


def _raw_conn(server) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=10.0)
    return sock


def _fuzz_bytes(rng: random.Random, category: str,
                max_frame: int) -> bytes:
    if category == "truncated-header":
        return bytes(rng.randrange(256)
                     for _ in range(rng.randint(1, 3)))
    if category == "truncated-payload":
        declared = rng.randint(1, 128)
        return FRAME_HEADER.pack(declared) + \
            b"x" * rng.randint(0, declared - 1)
    if category == "oversize":
        return FRAME_HEADER.pack(
            rng.randint(max_frame + 1, 2**31 - 1))
    if category == "bad-json":
        junk = bytes(rng.choice(b"{}[]:,x\"' ")
                     for _ in range(rng.randint(1, 20))) or b"{"
        try:  # ensure it is genuinely invalid JSON
            json.loads(junk)
            junk += b"{"
        except Exception:
            pass
        return FRAME_HEADER.pack(len(junk)) + junk
    if category == "bad-utf8":
        junk = b"\xff\xfe" + bytes(rng.randrange(256)
                                   for _ in range(rng.randint(0, 8)))
        return FRAME_HEADER.pack(len(junk)) + junk
    if category == "non-object":
        payload = json.dumps(
            rng.choice([[1, 2], "str", 7, None, True])).encode()
        return FRAME_HEADER.pack(len(payload)) + payload
    if category == "missing-op":
        return encode_frame({"id": rng.randint(0, 99)})
    if category == "unknown-op":
        return encode_frame({"id": 1, "op": rng.choice(
            ["frobnicate", "", "commit ", "READ", "delete-everything"])})
    if category == "bad-id":
        return encode_frame({"id": {"nested": True}, "op": "ping"})
    assert category == "bad-field-types"
    return encode_frame(rng.choice([
        {"id": 1, "op": "read", "relation": 42},
        {"id": 2, "op": "stage", "txn": 7, "ops": []},
        {"id": 3, "op": "stage", "txn": "t1", "ops": "not-a-list"},
        {"id": 4, "op": "hello", "branch": ["main"]},
        {"id": 5, "op": "branch", "name": None},
        {"id": 6, "op": "read", "relation": "dept", "at": 11},
    ]))


class TestMalformedFrameFuzz:
    def test_fuzz_sweep_never_kills_the_server(self, server):
        """>= 200 malformed frames across every category; recoverable
        ones are answered in-connection, fatal ones cost only their own
        connection, and the accept loop survives the lot."""
        rng = random.Random(0xF422)
        survivor = StoreClient(*server.address, hello=False)
        counts = {c: 0 for c in CATEGORIES}
        for case in range(FUZZ_CASES):
            category = CATEGORIES[case % len(CATEGORIES)]
            counts[category] += 1
            blob = _fuzz_bytes(rng, category, server.max_frame_bytes)
            if category in FATAL:
                sock = _raw_conn(server)
                sock.sendall(blob)
                if category == "oversize":
                    # one fatal bad-frame error, then the server closes
                    decoder = FrameDecoder()
                    data = sock.recv(65536)
                    (response,) = decoder.feed(data)
                    assert response["error"]["code"] == "bad-frame"
                    assert response["error"]["fatal"] is True
                    assert sock.recv(65536) == b""  # server closed
                sock.close()
            else:
                survivor.send_raw(blob)
                response = survivor.recv_message()
                assert response["ok"] is False
                assert response["error"]["code"] in (
                    "bad-frame", "protocol-error", "store-error",
                    "extension-error")
                # same connection still serves real traffic
                assert survivor.ping()
        assert sum(counts.values()) >= 200
        assert all(counts[c] > 0 for c in CATEGORIES)
        survivor.close()
        # the accept loop is intact: fresh connections do real work
        with StoreClient(*server.address) as c:
            assert c.ping()
            assert len(c.read("dept")) > 0

    def test_interleaved_partial_frames_then_valid_traffic(self, server):
        """A frame dribbled byte-by-byte across many sends is still one
        message; a client that stalls mid-frame then resumes is fine."""
        with StoreClient(*server.address, hello=False) as c:
            frame = encode_frame({"id": 1, "op": "ping"})
            for i in range(len(frame)):
                c.send_raw(frame[i:i + 1])
            assert c.recv_message()["ok"]

    def test_disconnect_mid_frame_is_quiet(self, server):
        """Hanging up after half a frame must not disturb the server."""
        for _ in range(10):
            sock = _raw_conn(server)
            sock.sendall(FRAME_HEADER.pack(100) + b"half")
            sock.close()
        with StoreClient(*server.address) as c:
            assert c.ping()
