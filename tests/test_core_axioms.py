"""Unit tests for the axiom checkers (repro.core.axioms)."""

import pytest

from repro.core import (
    AtomicValueSet,
    AttributeUniverse,
    ContributorAssignment,
    EntityType,
    EntityViewType,
    check_all,
    check_attribute_axiom,
    check_containment,
    check_entity_type_axiom,
    check_extension_axiom,
    check_integrity_axiom,
    check_relationship_axiom,
    check_view_axiom,
)


class TestAttributeAxiom:
    def test_clean_universe(self, schema):
        assert check_attribute_axiom(schema.universe) == []


class TestEntityTypeAxiom:
    def test_clean(self, schema):
        assert check_entity_type_axiom(schema.entity_types) == []

    def test_duplicate_detected(self):
        types = [EntityType("e1", {"a"}), EntityType("e2", {"a"})]
        findings = check_entity_type_axiom(types)
        assert len(findings) == 1
        assert findings[0].axiom == "Entity Type Axiom"
        assert "role attribute" in findings[0].message


class TestRelationshipAxiom:
    def test_clean(self, schema):
        assert check_relationship_axiom(schema, ContributorAssignment(schema)) == []


class TestExtensionAxiomCheck:
    def test_clean(self, db):
        assert check_extension_axiom(db) == []

    def test_injectivity_finding(self, db):
        broken = db.replace("manager", db.R("manager").with_tuples([
            {"name": "ann", "age": 31, "depname": "sales", "budget": 500},
        ]))
        findings = check_extension_axiom(broken)
        assert any("injectivity" in f.message for f in findings)

    def test_unsupported_finding(self, db):
        broken = db.replace("worksfor", db.R("worksfor").with_tuples([
            {"name": "fay", "age": 53, "depname": "admin", "location": "delft"},
        ]))
        findings = check_extension_axiom(broken)
        assert any("not supported" in f.message for f in findings)


class TestViewAxiomCheck:
    def test_clean(self, schema):
        view = EntityViewType("v", {schema["person"]})
        assert check_view_axiom(schema, [view]) == []

    def test_foreign_member_detected(self, schema):
        view = EntityViewType("v", {EntityType("alien", {"name"})})
        findings = check_view_axiom(schema, [view])
        assert findings and findings[0].axiom == "View Axiom"


class TestIntegrityAxiomCheck:
    def test_clean(self, schema, constraints):
        assert check_integrity_axiom(schema, constraints.constraints) == []

    def test_foreign_entity_detected(self, schema):
        from repro.core import Schema, SubsetConstraint

        other = Schema.from_attribute_sets({"x": {"a"}, "y": {"a", "b"}})
        constraint = SubsetConstraint(other["y"], other["x"])
        findings = check_integrity_axiom(schema, [constraint])
        assert findings and findings[0].axiom == "Integrity Axiom"


class TestContainmentCheck:
    def test_clean(self, db):
        assert check_containment(db) == []

    def test_finding_names_pair(self, db):
        broken = db.insert("manager", {
            "name": "eva", "age": 47, "depname": "admin", "budget": 100,
        }, propagate=False)
        findings = check_containment(broken)
        assert any("manager" in f.message for f in findings)


class TestCheckAll:
    def test_full_clean_report(self, schema, db, constraints):
        report = check_all(schema, db, constraints=constraints.constraints)
        assert report.ok()
        assert report.render() == "all axioms satisfied"

    def test_report_aggregates(self, schema, db):
        broken = db.insert("manager", {
            "name": "eva", "age": 47, "depname": "admin", "budget": 100,
        }, propagate=False)
        report = check_all(schema, broken)
        assert not report.ok()
        assert report.by_axiom("Containment Condition")
        assert "Containment" in report.render()

    def test_intension_only(self, schema):
        report = check_all(schema)
        assert report.ok()
