"""Unit tests for integrity constraints (the Integrity Axiom)."""

import pytest

from repro.core import (
    CardinalityConstraint,
    ConstraintSet,
    EntityFD,
    FunctionalConstraint,
    ParticipationConstraint,
    SubsetConstraint,
)
from repro.errors import DependencyError


class TestSubsetConstraint:
    def test_manager_isa_employee_holds(self, db, schema):
        constraint = SubsetConstraint(schema["manager"], schema["employee"])
        assert constraint.holds(db)
        assert constraint.violation_report(db) == []

    def test_violation_reported(self, db, schema):
        constraint = SubsetConstraint(schema["manager"], schema["employee"])
        broken = db.insert("manager", {
            "name": "eva", "age": 47, "depname": "admin", "budget": 100,
        }, propagate=False)
        assert not constraint.holds(broken)
        assert len(constraint.violation_report(broken)) == 1

    def test_requires_isa_pair(self, schema):
        with pytest.raises(DependencyError):
            SubsetConstraint(schema["person"], schema["manager"])


class TestFunctionalConstraint:
    def test_wraps_fd(self, db, schema, worksfor_fd):
        constraint = FunctionalConstraint(worksfor_fd)
        assert constraint.holds(db)
        assert constraint.context == schema["worksfor"]

    def test_violation_text(self, db, schema, worksfor_fd):
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        constraint = FunctionalConstraint(worksfor_fd)
        report = constraint.violation_report(broken)
        assert len(report) == 1
        assert "determinant" in report[0]


class TestCardinalityConstraint:
    def test_one_to_n_compiles_to_fd(self, schema):
        constraint = CardinalityConstraint(
            schema["worksfor"], schema["employee"], schema["department"], "1:n",
        )
        fds = constraint.as_fds()
        assert fds == [EntityFD(schema["employee"], schema["department"], schema["worksfor"])]

    def test_one_to_one_two_fds(self, schema):
        constraint = CardinalityConstraint(
            schema["worksfor"], schema["employee"], schema["department"], "1:1",
        )
        assert len(constraint.as_fds()) == 2

    def test_n_to_m_unconstrained(self, db, schema):
        constraint = CardinalityConstraint(
            schema["worksfor"], schema["employee"], schema["department"], "n:m",
        )
        assert constraint.as_fds() == []
        assert constraint.holds(db)

    def test_unknown_kind(self, schema):
        with pytest.raises(DependencyError):
            CardinalityConstraint(
                schema["worksfor"], schema["employee"], schema["department"], "2:3",
            )

    def test_holds_on_example(self, db, schema):
        constraint = CardinalityConstraint(
            schema["worksfor"], schema["employee"], schema["department"], "1:n",
        )
        assert constraint.holds(db)


class TestParticipation:
    def test_total_participation_holds(self, db, schema):
        constraint = ParticipationConstraint(schema["worksfor"], schema["employee"])
        assert constraint.holds(db)

    def test_lonely_member_detected(self, db, schema):
        constraint = ParticipationConstraint(schema["worksfor"], schema["department"])
        lonely = db.insert("department", {"depname": "admin", "location": "delft"})
        assert not constraint.holds(lonely)
        assert len(constraint.violation_report(lonely)) == 1

    def test_requires_contributor(self, schema):
        with pytest.raises(DependencyError):
            ParticipationConstraint(schema["person"], schema["department"])


class TestConstraintSet:
    def test_paper_constraints_hold(self, db, constraints):
        assert constraints.holds(db)
        assert constraints.report(db) == {}

    def test_integrity_axiom_validation(self, schema):
        from repro.core import EntityType, Schema

        other = Schema.from_attribute_sets({"x": {"a"}, "y": {"a", "b"}})
        constraint = SubsetConstraint(other["y"], other["x"])
        with pytest.raises(DependencyError):
            ConstraintSet(schema, [constraint])

    def test_functional_dependencies_collected(self, constraints, schema):
        fds = constraints.functional_dependencies()
        assert EntityFD(
            schema["employee"], schema["department"], schema["worksfor"]
        ) in fds

    def test_report_groups_by_name(self, db, schema, constraints):
        broken = db.insert("worksfor", {
            "name": "ann", "age": 31, "depname": "sales", "location": "delft",
        }, propagate=False)
        report = constraints.report(broken)
        assert any("1:n" in name for name in report)
