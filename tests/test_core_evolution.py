"""Unit tests for schema evolution analysis (repro.core.evolution)."""

import pytest

from repro.core import (
    AddAttribute,
    AddEntityType,
    RemoveAttribute,
    RemoveEntityType,
    RenameEntityType,
    analyse,
    intension_map,
    migrate,
)
from repro.errors import EvolutionError


class TestApply:
    def test_add_entity_type(self, schema):
        change = AddEntityType("veteran", frozenset({"name", "age", "budget"}))
        new = change.apply(schema)
        assert "veteran" in new

    def test_add_duplicate_attribute_set_rejected(self, schema):
        from repro.errors import AxiomViolationError

        change = AddEntityType("clone", frozenset({"name", "age"}))
        with pytest.raises(AxiomViolationError):
            change.apply(schema)

    def test_remove_entity_type(self, schema):
        new = RemoveEntityType("worksfor").apply(schema)
        assert "worksfor" not in new

    def test_rename(self, schema):
        new = RenameEntityType("person", "human").apply(schema)
        assert "human" in new and "person" not in new
        assert new["human"].attributes == schema["person"].attributes

    def test_add_attribute(self, schema):
        change = AddAttribute("person", "location", default="delft")
        new = change.apply(schema)
        assert "location" in new["person"].attributes

    def test_add_unknown_attribute_rejected(self, schema):
        with pytest.raises(EvolutionError):
            AddAttribute("person", "salary").apply(schema)

    def test_remove_attribute(self, schema):
        new = RemoveAttribute("department", "location").apply(schema)
        assert "location" not in new["department"].attributes

    def test_remove_attribute_collision_rejected(self, schema):
        """manager minus budget == employee: the Entity Type Axiom blocks it."""
        from repro.errors import AxiomViolationError

        with pytest.raises(AxiomViolationError):
            RemoveAttribute("manager", "budget").apply(schema)

    def test_remove_attribute_creating_duplicate_rejected(self, schema):
        from repro.errors import AxiomViolationError

        # employee minus depname == person: Entity Type Axiom violation.
        with pytest.raises(AxiomViolationError):
            RemoveAttribute("employee", "depname").apply(schema)


class TestIntensionMap:
    def test_rename_is_embedding(self, schema):
        change = RenameEntityType("person", "human")
        new = change.apply(schema)
        mapping = change.type_mapping(schema, new)
        assert intension_map(schema, new, mapping).is_homeomorphism()

    def test_addition_embeds(self, schema):
        change = AddEntityType("veteran", frozenset({"name", "age", "budget"}))
        new = change.apply(schema)
        mapping = change.type_mapping(schema, new)
        assert intension_map(schema, new, mapping).is_embedding()


class TestMigration:
    def test_rename_migrates_tuples(self, db):
        change = RenameEntityType("person", "human")
        migrated = migrate(db, change)
        assert len(migrated.R("human")) == len(db.R("person"))

    def test_grow_pads_default(self, db):
        change = AddAttribute("department", "budget", default=100)
        migrated = migrate(db, change)
        for t in migrated.R("department").tuples:
            assert t["budget"] == 100

    def test_grow_without_default_fails(self, db):
        change = AddAttribute("department", "budget")
        with pytest.raises(EvolutionError):
            migrate(db, change)

    def test_shrink_projects(self, db):
        change = RemoveAttribute("department", "location")
        migrated = migrate(db, change)
        assert migrated.R("department").schema == frozenset({"depname"})


class TestAnalyse:
    def test_rename_preserves_information(self, db):
        report = analyse(db, RenameEntityType("person", "human"))
        assert report.information_preserved
        assert report.intension_embeds

    def test_addition_preserves(self, db):
        report = analyse(db, AddEntityType("veteran", frozenset({"name", "age", "budget"})))
        assert report.information_preserved
        assert report.intension_embeds

    def test_removal_of_populated_type_flagged(self, db):
        report = analyse(db, RemoveEntityType("worksfor"))
        assert not report.information_preserved
        assert any("forgets" in note for note in report.notes)

    def test_removal_of_empty_type_preserves(self, schema):
        from repro.core import DatabaseExtension

        empty = DatabaseExtension(schema)
        report = analyse(empty, RemoveEntityType("worksfor"))
        assert report.information_preserved

    def test_grow_with_default_roundtrips(self, db):
        report = analyse(db, AddAttribute("department", "budget", default=100))
        assert report.information_preserved

    def test_shrink_merging_instances_flagged(self, db):
        # Two departments share no location... make them: add a second
        # department with the same location, then drop depname.
        grown = db.insert("department", {"depname": "admin", "location": "amsterdam"})
        report = analyse(grown, RemoveAttribute("department", "depname"))
        assert not report.information_preserved
        assert any("merged" in note for note in report.notes)

    def test_inapplicable_change_raises(self, db):
        with pytest.raises(EvolutionError):
            analyse(db, AddAttribute("person", "salary"))
