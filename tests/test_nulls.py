"""Unit tests for boolean-algebra domains and incomplete information."""

import pytest

from repro.errors import IncompleteInformationError
from repro.nulls import (
    IncompleteRelation,
    IncompleteValue,
    PowersetAlgebra,
    certain_fds_monotone,
    is_homomorphism,
)
from repro.relational import FD


class TestAlgebra:
    def test_structure(self):
        algebra = PowersetAlgebra("ab")
        assert algebra.top == frozenset("ab")
        assert algebra.bottom == frozenset()
        assert algebra.is_atom(frozenset({"a"}))
        assert not algebra.is_atom(algebra.top)

    def test_needs_atoms(self):
        with pytest.raises(IncompleteInformationError):
            PowersetAlgebra([])

    def test_operations(self):
        algebra = PowersetAlgebra("abc")
        x, y = frozenset("ab"), frozenset("bc")
        assert algebra.meet(x, y) == frozenset("b")
        assert algebra.join(x, y) == frozenset("abc")
        assert algebra.complement(x) == frozenset("c")

    def test_element_validation(self):
        algebra = PowersetAlgebra("ab")
        with pytest.raises(IncompleteInformationError):
            algebra.element({"z"})

    def test_leq_is_specificity(self):
        algebra = PowersetAlgebra("ab")
        assert algebra.leq(frozenset("a"), algebra.top)
        assert not algebra.leq(algebra.top, frozenset("a"))

    def test_elements_count(self):
        assert len(PowersetAlgebra("abc").elements()) == 8

    def test_laws_exhaustive_small(self):
        algebra = PowersetAlgebra("ab")
        elements = algebra.elements()
        for x in elements:
            for y in elements:
                for z in elements:
                    assert algebra.satisfies_lattice_laws(x, y, z)
                    assert algebra.satisfies_boolean_laws(x, y, z)

    def test_identity_homomorphism(self):
        algebra = PowersetAlgebra("ab")
        identity = {e: e for e in algebra.elements()}
        assert is_homomorphism(algebra, algebra, identity)

    def test_non_homomorphism(self):
        algebra = PowersetAlgebra("ab")
        swap = {e: algebra.complement(e) for e in algebra.elements()}
        assert not is_homomorphism(algebra, algebra, swap)


class TestIncompleteValue:
    def test_known_and_null(self):
        v = IncompleteValue.known(3)
        assert v.is_definite() and v.definite_value() == 3
        null = IncompleteValue.null(range(4))
        assert not null.is_definite()

    def test_empty_rejected(self):
        with pytest.raises(IncompleteInformationError):
            IncompleteValue([])

    def test_refine(self):
        v = IncompleteValue({1, 2, 3}).refine(IncompleteValue({2, 3, 4}))
        assert v.possible == frozenset({2, 3})

    def test_contradictory_refine(self):
        with pytest.raises(IncompleteInformationError):
            IncompleteValue({1}).refine(IncompleteValue({2}))


class TestIncompleteRelation:
    def build(self, rows):
        return IncompleteRelation(
            ["k", "v"], {"k": [1, 2], "v": ["x", "y"]}, rows,
        )

    def test_schema_checked(self):
        rel = self.build([])
        with pytest.raises(IncompleteInformationError):
            rel.add_row({"k": 1})

    def test_domain_checked(self):
        with pytest.raises(IncompleteInformationError):
            self.build([{"k": 1, "v": "zzz"}])

    def test_completion_count(self):
        rel = self.build([
            {"k": 1, "v": IncompleteValue.null(["x", "y"])},
            {"k": 2, "v": "x"},
        ])
        assert rel.completion_count() == 2
        assert len(rel.completions()) == 2

    def test_completion_limit(self):
        rel = self.build([
            {"k": IncompleteValue.null([1, 2]), "v": IncompleteValue.null(["x", "y"])}
            for _ in range(4)
        ])
        with pytest.raises(IncompleteInformationError):
            rel.completions(limit=10)

    def test_certain_vs_possible(self):
        fd = FD({"k"}, {"v"})
        definite = self.build([{"k": 1, "v": "x"}, {"k": 2, "v": "y"}])
        assert definite.fd_certain(fd) and definite.fd_possible(fd)
        ambiguous = self.build([
            {"k": 1, "v": "x"},
            {"k": 1, "v": IncompleteValue.null(["x", "y"])},
        ])
        assert not ambiguous.fd_certain(fd)
        assert ambiguous.fd_possible(fd)  # completion with v=x works

    def test_certainly_violated(self):
        fd = FD({"k"}, {"v"})
        broken = self.build([{"k": 1, "v": "x"}, {"k": 1, "v": "y"}])
        assert not broken.fd_possible(fd)


class TestCarryOver:
    def test_refinement_preserves_certainty(self):
        fd = FD({"k"}, {"v"})
        vague = IncompleteRelation(
            ["k", "v"], {"k": [1], "v": ["x", "y"]},
            [{"k": 1, "v": IncompleteValue.null(["x", "y"])}],
        )
        sharp = IncompleteRelation(
            ["k", "v"], {"k": [1], "v": ["x", "y"]},
            [{"k": 1, "v": "x"}],
        )
        assert sharp.information_order_leq(vague)
        assert certain_fds_monotone(sharp, vague, fd)

    def test_unordered_pair_rejected(self):
        fd = FD({"k"}, {"v"})
        one = IncompleteRelation(["k", "v"], {"k": [1], "v": ["x"]},
                                 [{"k": 1, "v": "x"}])
        two = IncompleteRelation(["k", "v"], {"k": [1], "v": ["x"]}, [])
        with pytest.raises(IncompleteInformationError):
            certain_fds_monotone(one, two, fd)

    def test_independence_from_entity_structure(self):
        """The same incomplete relation gives the same FD verdicts no
        matter which entity type's attributes it instantiates — the
        semantics mentions only the value algebra (contrast with Reiter)."""
        fd = FD({"k"}, {"v"})
        rows = [{"k": 1, "v": IncompleteValue.null(["x", "y"])}]
        as_person = IncompleteRelation(["k", "v"], {"k": [1], "v": ["x", "y"]}, rows)
        as_department = IncompleteRelation(["k", "v"], {"k": [1], "v": ["x", "y"]}, rows)
        assert as_person.fd_certain(fd) == as_department.fd_certain(fd)
        assert as_person.fd_possible(fd) == as_department.fd_possible(fd)
