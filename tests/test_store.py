"""Unit and differential tests for the versioned store (repro.store).

The load-bearing suites are differential:

* delta-mode commit validation must agree, accept/reject and state for
  state, with audit-mode validation (full dirty-context ``check_all``)
  over seeded random transaction streams, and

* WAL replay must rebuild a version graph whose every state equals the
  original (~200 seeded version comparisons, trusted and verified
  replay).
"""

import random

import pytest

from repro import io
from repro.core import DatabaseExtension, check_all
from repro.core.employee import employee_constraints, employee_extension
from repro.errors import (
    CommitRejected,
    ExtensionError,
    StoreError,
    TransactionConflict,
)
from repro.store import (
    SessionService,
    StoreEngine,
    Transaction,
    ValidationPlan,
    VersionGraph,
    WriteAheadLog,
    write_footprint,
)
from repro.workloads import (
    manager_stream,
    random_txn_specs,
    serving_state,
)


@pytest.fixture
def employee_engine():
    db = employee_extension()
    return StoreEngine(db, employee_constraints(db.schema))


def _mk_engine(n=60, **kwargs):
    schema, db, constraints = serving_state(n)
    return StoreEngine(db, constraints, **kwargs)


class TestVersionGraph:
    def test_root_and_heads(self, employee_engine):
        g = employee_engine.graph
        assert g.root.vid == "v0"
        assert g.head().vid == "v0"
        assert g.branches() == {"main": "v0"}

    def test_unknown_version_and_branch(self, employee_engine):
        g = employee_engine.graph
        with pytest.raises(StoreError):
            g.get("v99")
        with pytest.raises(StoreError):
            g.head("nope")

    def test_span_and_lineage(self):
        engine = _mk_engine()
        session = SessionService(engine).session()
        rows = manager_stream(60, 3)
        vids = [session.commit(
            session.begin().insert("manager", r)).vid for r in rows]
        assert vids == ["v1", "v2", "v3"]
        head = engine.head_version()
        assert [v.vid for v in engine.graph.span("v1", head)] == ["v3", "v2"]
        assert engine.graph.span("v3", head) == []
        assert [v.vid for v in engine.graph.lineage("v3")] == \
            ["v0", "v1", "v2", "v3"]

    def test_branching_isolates_heads(self):
        engine = _mk_engine()
        engine.branch("dev")
        dev = SessionService(engine).session("dev")
        main = SessionService(engine).session("main")
        row = manager_stream(60, 1)[0]
        v_dev = dev.commit(dev.begin().insert("manager", row))
        assert engine.head_version("dev") is v_dev
        assert engine.head_version("main").vid == "v0"
        assert row["pname"] not in {
            t["pname"] for t in main.read("manager")}
        with pytest.raises(StoreError):
            engine.branch("dev")  # duplicate name


class TestTransactionBuffering:
    def test_rejects_bad_schema_and_domain(self, employee_engine):
        txn = employee_engine.begin()
        with pytest.raises(ExtensionError):
            txn.insert("manager", {"name": "ann"})
        with pytest.raises(ExtensionError):
            txn.insert("employee",
                       {"name": "nobody", "age": 31, "depname": "sales"})

    def test_single_use(self, employee_engine):
        txn = employee_engine.begin().insert(
            "manager", {"name": "cas", "age": 28, "depname": "sales",
                        "budget": 250})
        employee_engine.commit(txn)
        with pytest.raises(StoreError):
            employee_engine.commit(txn)

    def test_empty_transaction_is_a_noop(self, employee_engine):
        head = employee_engine.head_version()
        assert employee_engine.commit(employee_engine.begin()) is head

    def test_net_changes_match_object_level_updates(self):
        """A transaction's net effect equals chaining the public
        DatabaseExtension update methods op for op."""
        rng = random.Random(11)
        from tests.generators import random_database_states

        for seed in range(12):
            rng = random.Random(seed)
            (schema, db), *_ = random_database_states(rng)
            specs = random_txn_specs(rng, db, 6)
            for ops in specs:
                txn = Transaction(schema, None, "main")
                oracle = db
                for spec in ops:
                    kind, rel, payload = spec[0], spec[1], spec[2]
                    propagate = spec[3] if len(spec) > 3 else True
                    if kind == "insert":
                        txn.insert(rel, payload, propagate)
                        oracle = oracle.insert(rel, payload, propagate)
                    else:
                        txn.delete(rel, payload, propagate)
                        oracle = oracle.delete(rel, payload, propagate)
                changes = txn.net_changes(db)
                derived = db.apply_changes(changes.added, changes.removed,
                                           changes.replaced)
                assert derived == oracle


class TestCommitGate:
    def test_clean_commit_accepted_and_audited(self):
        engine = _mk_engine()
        session = SessionService(engine).session()
        version = session.commit(
            session.begin().insert("manager", manager_stream(60, 1)[0]))
        assert version.vid == "v1"
        assert engine.audit().ok()

    def test_containment_violation_rejected_with_witnesses(self):
        engine = _mk_engine()
        row = manager_stream(60, 1)[0]
        bad = dict(row, budget=(row["budget"] + 1) % 53)  # no worksfor support
        txn = engine.begin().insert("manager", bad, propagate=False)
        with pytest.raises(CommitRejected) as exc:
            engine.commit(txn)
        checks = {f["check"] for f in exc.value.findings}
        assert "containment" in checks
        assert all(f["witnesses"] for f in exc.value.findings
                   if f["check"] == "containment")

    def test_fd_violation_rejected(self):
        engine = _mk_engine()
        # worksfor: person (pname,dname) -> dept (dname,budget); a second
        # row in the same (pname,dname) lhs-group with a different budget
        # breaks the dependency (propagation keeps containment clean, so
        # the FD is the *only* thing wrong).
        state = engine.state()
        t = sorted(state.R("worksfor").tuples, key=repr)[0].as_dict()
        bad = dict(t, budget=(t["budget"] + 1) % 53)
        txn = engine.begin().insert("worksfor", bad)
        with pytest.raises(CommitRejected) as exc:
            engine.commit(txn)
        assert any(f["check"] == "fd" for f in exc.value.findings)

    def test_injectivity_violation_rejected(self):
        engine = _mk_engine()
        state = engine.state()
        victim = sorted(state.R("manager").tuples, key=repr)[0].as_dict()
        twin = dict(victim, bonus=(victim["bonus"] + 1) % 11)
        txn = engine.begin().insert("manager", twin, propagate=False)
        with pytest.raises(CommitRejected) as exc:
            engine.commit(txn)
        assert any(f["check"] == "extension-axiom"
                   for f in exc.value.findings)

    def test_support_stripping_delete_rejected(self):
        engine = _mk_engine()
        state = engine.state()
        # a dept row supporting office (compound of dept): removing it
        # without cascading offices strips contributor support
        office = sorted(state.R("office").tuples, key=repr)[0]
        dept = office.project(state.schema["dept"].attributes)
        txn = engine.begin().remove("dept", [dept])
        with pytest.raises(CommitRejected) as exc:
            engine.commit(txn)
        checks = {f["check"] for f in exc.value.findings}
        assert checks & {"extension-axiom", "containment", "participation"}

    def test_rejection_leaves_store_untouched(self):
        engine = _mk_engine()
        head = engine.head_version()
        bad = dict(manager_stream(60, 1)[0], budget=52)
        with pytest.raises(CommitRejected):
            engine.commit(engine.begin().insert("manager", bad,
                                                propagate=False))
        assert engine.head_version() is head
        assert len(engine.graph) == 1
        assert engine.audit().ok()

    def test_inconsistent_root_refused(self):
        schema, db, constraints = serving_state(30)
        broken = db.insert("manager", dict(manager_stream(30, 1)[0],
                                           budget=52), propagate=False)
        with pytest.raises(StoreError):
            StoreEngine(broken, constraints)

    def test_replace_routes_through_full_audit(self):
        engine = _mk_engine()
        state = engine.state()
        keep = sorted(state.R("manager").tuples, key=repr)[:3]
        version = engine.commit(
            engine.begin().replace("manager", [t.as_dict() for t in keep]))
        assert version.writes is None
        assert len(engine.state().R("manager")) == 3
        assert engine.audit().ok()


class TestDeltaVsAuditEquivalence:
    """Delta-mode validation is judged against the full dirty-context
    audit: same accepts, same rejects, same states, seed for seed."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_traffic_agreement(self, seed):
        rng = random.Random(seed)
        n = 40
        delta = _mk_engine(n, validation="delta")
        audit = _mk_engine(n, validation="audit")
        assert delta.validation == "delta"
        specs = random_txn_specs(rng, delta.state(), 12)
        outcomes = []
        for ops in specs:
            results = []
            for engine in (delta, audit):
                session = SessionService(engine).session()
                try:
                    session.run(ops)
                    results.append("ok")
                except CommitRejected:
                    results.append("rejected")
            assert results[0] == results[1], (seed, ops)
            outcomes.append(results[0])
            assert delta.state() == audit.state()
        assert delta.head_version().vid == audit.head_version().vid
        # every committed head must also pass an independent full audit
        report = check_all(delta.schema, delta.state(),
                           constraints=delta.constraints)
        assert report.ok()

    def test_committed_versions_always_audit_clean(self):
        rng = random.Random(99)
        engine = _mk_engine(40)
        session = SessionService(engine).session()
        for ops in random_txn_specs(rng, engine.state(), 20):
            try:
                session.run(ops)
            except CommitRejected:
                pass
        for version in engine.graph.log():
            assert engine._audit(version.state).ok(), version.vid


class TestOptimisticConcurrency:
    def test_disjoint_writers_rebase_onto_each_other(self):
        engine = _mk_engine()
        rows = manager_stream(60, 2)
        a = engine.begin().insert("manager", rows[0])
        b = engine.begin().insert("manager", rows[1])  # same base as a
        va = engine.commit(a)
        vb = engine.commit(b)  # stale base, disjoint footprint
        assert (va.vid, vb.vid) == ("v1", "v2")
        assert vb.parent is va
        managers = engine.state().R("manager")
        assert all(any(t["pname"] == r["pname"] for t in managers)
                   for r in rows)
        assert engine.audit().ok()

    def test_overlapping_footprints_conflict(self):
        engine = _mk_engine()
        row = manager_stream(60, 1)[0]
        a = engine.begin().insert("manager", row)
        b = engine.begin().delete("manager", row)
        engine.commit(a)
        with pytest.raises(TransactionConflict) as exc:
            engine.commit(b)
        assert exc.value.keys

    def test_replace_conflicts_with_everything(self):
        engine = _mk_engine()
        state = engine.state()
        keep = [t.as_dict() for t in
                sorted(state.R("manager").tuples, key=repr)]
        a = engine.begin().insert("manager", manager_stream(60, 1)[0])
        b = engine.begin().replace("manager", keep)
        engine.commit(a)
        with pytest.raises(TransactionConflict):
            engine.commit(b)

    def test_session_retry_resolves_conflicts(self):
        engine = _mk_engine()
        session = SessionService(engine).session()
        row = manager_stream(60, 1)[0]
        engine.commit(engine.begin().insert("manager", row))
        txn = session.begin().delete("manager", row)
        # make the base stale AND footprint-overlapping via a same-group
        # second commit
        stale = engine.begin().delete("manager", row)
        stale.base = engine.graph.root
        version = session.commit(stale)  # rebases through the conflict
        assert version.vid == "v2"
        assert txn  # unused txn does not disturb the store

    def test_footprint_granularity_is_lhs_groups(self):
        engine = _mk_engine()
        plan = engine.plan
        rows = manager_stream(60, 2)
        t1 = engine.begin().insert("manager", rows[0])
        t2 = engine.begin().insert("manager", rows[1])
        c1 = t1.net_changes(engine.state())
        c2 = t2.net_changes(engine.state())
        f1, f2 = write_footprint(plan, c1), write_footprint(plan, c2)
        assert f1 and f2 and not (f1 & f2)
        same = engine.begin().insert("manager", rows[0])
        f3 = write_footprint(plan, same.net_changes(engine.state()))
        assert f1 & f3


class TestSessions:
    def test_snapshot_reads_are_pinned(self):
        engine = _mk_engine()
        session = SessionService(engine).session()
        pinned = session.snapshot()
        before = session.read("manager", at=pinned)
        session.commit(
            session.begin().insert("manager", manager_stream(60, 1)[0]))
        assert session.read("manager", at=pinned) == before
        assert len(session.read("manager")) == len(before) + 1

    def test_unknown_branch_fails_fast(self):
        engine = _mk_engine()
        with pytest.raises(StoreError):
            SessionService(engine).session("nope")

    def test_close_releases_pins_and_refuses_new_work(self):
        engine = _mk_engine()
        session = SessionService(engine).session()
        pinned = session.pin()
        assert pinned.vid in engine.pinned()
        session.close()
        assert session.closed
        assert not session.pins()
        assert pinned.vid not in engine.pinned()
        session.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            session.begin()
        with pytest.raises(StoreError, match="closed"):
            session.commit(Transaction(engine.schema,
                                       engine.head_version(), "main"))

    def test_close_surfaces_inflight_conflict_not_swallowed(self):
        """The disconnect race: a session closed while its commit is
        mid-retry raises the pending TransactionConflict at the next
        conflict instead of retrying on — staged by having the commit
        attempt itself flip the flag, exactly where a cross-thread
        close() lands."""
        engine = _mk_engine()
        session = SessionService(engine).session()
        txn = session.begin().insert("manager", manager_stream(60, 1)[0])

        def close_then_conflict(attempt):
            session._closed = True  # the concurrent close() lands here
            raise TransactionConflict("footprint overlap", keys=())

        engine.commit = close_then_conflict  # instance shadow, test-only
        with pytest.raises(TransactionConflict, match="footprint overlap"):
            session.commit(txn, max_retries=10**9)

    def test_close_all_sweeps_every_live_session(self):
        engine = _mk_engine()
        service = SessionService(engine)
        sessions = [service.session() for _ in range(3)]
        sessions[0].pin()
        assert len(service.live_sessions()) == 3
        service.close_all()
        assert service.live_sessions() == ()
        assert all(s.closed for s in sessions)
        assert all(not s.pins() for s in sessions)

    def test_conflict_chains_engine_teardown_cause(self):
        """When the engine's branch head is gone mid-retry (service
        torn down), the conflict is re-raised with the lookup failure
        chained as its cause — the caller learns both facts."""
        engine = _mk_engine()
        session = SessionService(engine).session()
        txn = session.begin().insert("manager", manager_stream(60, 1)[0])

        def conflicted(attempt):
            raise TransactionConflict("lost the race", keys=())

        engine.commit = conflicted
        engine.graph.heads.pop("main")  # simulate torn-down engine
        with pytest.raises(TransactionConflict,
                           match="lost the race") as caught:
            session.commit(txn)
        assert isinstance(caught.value.__cause__, StoreError)


class TestValidationPlan:
    def test_probe_family_covers_all_checks(self):
        schema, db, constraints = serving_state(30)
        plan = ValidationPlan(db, constraints)
        fam = plan.probe_family
        manager = schema["manager"]
        assert schema["worksfor"].attributes in fam["manager"]
        assert schema["person"].attributes in fam["worksfor"]
        assert manager.attributes in fam["manager"]
        assert plan.incremental_ok

    def test_unknown_constraint_kind_degrades_to_audit(self):
        from repro.core import DomainConstraint

        schema, db, constraints = serving_state(30)
        custom = DomainConstraint("custom", schema["person"], lambda r: True)
        engine = StoreEngine(db, constraints + [custom])
        assert engine.validation == "audit"

    def test_matches_checkset_granularity(self):
        """The plan's FD probe sets agree with the lhs grouping the
        kernel CheckSet compiles for the same constraints."""
        from repro.kernel import CheckSet

        schema, db, constraints = serving_state(30)
        plan = ValidationPlan(db, constraints)
        by_context: dict[str, list] = {}
        for _label, context, lhs, rhs in plan.fds:
            by_context.setdefault(context, []).append((lhs, rhs))
        for context, fds in by_context.items():
            inst = db.kernel.instance(context)
            checkset = CheckSet(inst)
            for i, (lhs, rhs) in enumerate(fds):
                checkset.add_fd(i, lhs, rhs)
            assert {inst.indices_of(lhs) for lhs, _ in fds} == \
                set(checkset.lhs_index_sets())


class TestWalReplay:
    def test_wal_is_durable_and_ordered(self, tmp_path):
        path = tmp_path / "store.wal"
        engine = _mk_engine(30, wal=path)
        session = SessionService(engine).session()
        for row in manager_stream(30, 3):
            session.commit(session.begin().insert("manager", row))
        engine.close()
        records = list(WriteAheadLog.records(path))
        assert [r["type"] for r in records] == \
            ["snapshot", "commit", "commit", "commit"]
        assert [r.get("version") for r in records] == \
            ["v0", "v1", "v2", "v3"]

    def test_failed_branch_does_not_poison_wal(self, tmp_path):
        path = tmp_path / "store.wal"
        engine = _mk_engine(30, wal=path)
        engine.branch("dev")
        with pytest.raises(StoreError):
            engine.branch("dev")  # duplicate: refused BEFORE the append
        engine.close()
        replayed = StoreEngine.replay(path)  # log stays replayable
        assert replayed.graph.branches() == engine.graph.branches()

    def test_fresh_engine_refuses_populated_wal(self, tmp_path):
        path = tmp_path / "store.wal"
        engine = _mk_engine(30, wal=path)
        engine.commit(
            engine.begin().insert("manager", manager_stream(30, 1)[0]))
        engine.close()
        with pytest.raises(StoreError):
            _mk_engine(30, wal=path)  # would append a second snapshot

    def test_corrupt_wal_reported(self, tmp_path):
        path = tmp_path / "bad.wal"
        path.write_text('{"type": "snapshot"\nnot json\n')
        with pytest.raises(StoreError):
            list(WriteAheadLog.records(path))
        empty = tmp_path / "empty.wal"
        empty.write_text("")
        with pytest.raises(StoreError):
            StoreEngine.replay(empty)

    def test_tampered_wal_fails_verify(self, tmp_path):
        path = tmp_path / "store.wal"
        engine = _mk_engine(30, wal=path)
        row = manager_stream(30, 1)[0]
        engine.commit(engine.begin().insert("manager", row))
        engine.close()
        # tamper: break the logged row's worksfor support
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace(f'"budget": {row["budget"]}',
                                    f'"budget": {(row["budget"] + 1) % 53}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CommitRejected):
            StoreEngine.replay(path, verify=True)

    @pytest.mark.parametrize("seed", range(25))
    def test_replay_rebuilds_identical_graph(self, seed, tmp_path):
        """The acceptance differential: every replayed version equals
        the original, for trusted and for verified replay, across
        seeded random traffic (25 seeds x ~8+ versions each ~ 200+
        state comparisons)."""
        rng = random.Random(seed)
        from tests.generators import random_database_states

        (schema, db), *_ = random_database_states(rng, rows_per_leaf=2)
        path = tmp_path / "store.wal"
        engine = StoreEngine(db, (), wal=path)
        service = SessionService(engine)
        session = service.session()
        for ops in random_txn_specs(rng, db, 14):
            try:
                session.run(ops)
            except CommitRejected:
                pass
        if len(engine.graph) > 3 and rng.random() < 0.5:
            engine.branch("side", at="v1")
            side = service.session("side")
            try:
                side.run(random_txn_specs(rng, db, 1)[0])
            except CommitRejected:
                pass
        engine.close()
        assert len(engine.graph) >= 2, "seed produced no committed traffic"
        for verify in (False, True):
            replayed = StoreEngine.replay(path, verify=verify)
            originals = list(engine.graph.log())
            copies = list(replayed.graph.log())
            assert [v.vid for v in originals] == [v.vid for v in copies]
            for orig, copy in zip(originals, copies):
                assert orig.state == copy.state, (seed, orig.vid)
                assert orig.parent is None or \
                    orig.parent.vid == copy.parent.vid
            assert engine.graph.branches() == replayed.graph.branches()

    def test_replay_into_fresh_wal_is_equivalent(self, tmp_path):
        first = tmp_path / "a.wal"
        second = tmp_path / "b.wal"
        engine = _mk_engine(30, wal=first)
        session = SessionService(engine).session()
        for row in manager_stream(30, 2):
            session.commit(session.begin().insert("manager", row))
        engine.close()
        replayed = StoreEngine.replay(first, wal=second)
        replayed.close()
        again = StoreEngine.replay(second)
        assert [v.vid for v in again.graph.log()] == \
            [v.vid for v in engine.graph.log()]
        assert again.state() == engine.state()


class TestStoreWithChainCap:
    def test_tiny_chain_cap_store_still_serves(self):
        """A cap-2 root severs the delta chain constantly; commits,
        audits, and replayed equality must be unaffected."""
        schema, db, constraints = serving_state(30)
        capped = DatabaseExtension(
            schema, {e.name: db.R(e) for e in schema}, chain_cap=2)
        engine = StoreEngine(capped, constraints)
        session = SessionService(engine).session()
        for row in manager_stream(30, 4):
            session.commit(session.begin().insert("manager", row))
        assert engine.audit().ok()
        assert len(engine.graph) == 5
