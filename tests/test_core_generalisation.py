"""Unit tests for the generalisation structure (section 3.2)."""

import pytest

from repro.core import GeneralisationStructure, SpecialisationStructure
from repro.core.employee import PAPER_G_SETS


@pytest.fixture
def gen(schema):
    return GeneralisationStructure(schema)


class TestDualConstruction:
    def test_complement_attributes(self, gen, schema):
        assert gen.complement_attributes(schema["person"]) == frozenset(
            {"depname", "budget", "location"}
        )

    def test_V_bar(self, gen):
        assert {e.name for e in gen.V_bar("budget")} == {
            "person", "employee", "department", "worksfor",
        }

    def test_paper_values(self, gen, schema):
        for name, expected in PAPER_G_SETS.items():
            assert {f.name for f in gen.G(schema[name])} == set(expected)

    def test_intersection_construction_agrees(self, gen):
        assert gen.cross_check()

    def test_proper_generalisations(self, gen, schema):
        proper = {e.name for e in gen.proper_generalisations(schema["worksfor"])}
        assert proper == {"person", "employee", "department"}


class TestDualTopology:
    def test_open_cover(self, gen):
        assert gen.is_open_cover()

    def test_minimal_open_is_G(self, gen):
        assert gen.minimal_open_is_G()

    def test_strictness(self, gen):
        assert gen.strictness_holds()


class TestDuality:
    def test_corollary(self, gen):
        """For all x, y: y in S_x iff x in G_y."""
        assert gen.duality_corollary_holds()

    def test_person_counterexample(self, gen, schema):
        """S_person and G_person are not complements (the paper's example)."""
        witness = gen.not_complement_witness(schema["person"])
        assert not witness["union_is_E"]
        assert witness["intersection_is_singleton"]
        assert {e.name for e in witness["intersection"]} == {"person"}
        union_names = {e.name for e in witness["union"]}
        assert union_names == {"person", "employee", "manager", "worksfor"}

    def test_hasse_reverses_isa(self, gen, schema):
        spec = SpecialisationStructure(schema)
        isa = {(x.name, y.name) for x, y in spec.isa_hasse()}
        ghasse = {(x.name, y.name) for x, y in gen.hasse()}
        assert ghasse == {(y, x) for x, y in isa}
