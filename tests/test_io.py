"""Unit tests for JSON import/export (repro.io)."""

import json

import pytest

from repro import io
from repro.core.employee import employee_constraints, employee_extension
from repro.errors import SchemaError


class TestSchemaRoundtrip:
    def test_schema_to_from(self, schema):
        data = io.schema_to_dict(schema)
        rebuilt = io.schema_from_dict(data)
        assert rebuilt == schema

    def test_missing_entity_types(self):
        with pytest.raises(SchemaError):
            io.schema_from_dict({"domains": {}})

    def test_json_serialisable(self, schema):
        text = json.dumps(io.schema_to_dict(schema))
        assert "worksfor" in text


class TestExtensionRoundtrip:
    def test_extension_to_from(self, db):
        data = io.extension_to_dict(db)
        rebuilt = io.extension_from_dict(data)
        assert rebuilt == db

    def test_empty_relations_omitted(self, schema):
        from repro.core import DatabaseExtension

        db = DatabaseExtension(schema)
        data = io.extension_to_dict(db)
        assert data.get("relations", {}) == {}

    def test_contributor_overrides_roundtrip(self, schema):
        from repro.core import ContributorAssignment, DatabaseExtension

        contributors = ContributorAssignment(schema, {"manager": ["person"]})
        db = DatabaseExtension(schema, {}, contributors)
        data = io.extension_to_dict(db)
        assert data["contributors"] == {"manager": ["person"]}
        rebuilt = io.extension_from_dict(data)
        assert rebuilt.contributors.contributors(schema["manager"]) == \
            frozenset({schema["person"]})


class TestConstraintsRoundtrip:
    def test_all_builtin_kinds(self, schema, constraints):
        items = io.constraints_to_list(constraints)
        kinds = {item["kind"] for item in items}
        assert {"subset", "cardinality"} <= kinds
        rebuilt = io.constraints_from_list(schema, items)
        assert io.constraints_to_list(rebuilt) == items

    def test_unknown_kind_rejected(self, schema):
        with pytest.raises(SchemaError):
            io.constraints_from_list(schema, [{"kind": "mystery"}])

    def test_unserialisable_constraint_rejected(self, schema):
        from repro.core import ConstraintSet, DomainConstraint

        constraints = ConstraintSet(schema, [
            DomainConstraint("custom", schema["person"], lambda r: True),
        ])
        with pytest.raises(SchemaError):
            io.constraints_to_list(constraints)


class TestFileRoundtrip:
    def test_save_load(self, tmp_path, db, constraints):
        path = tmp_path / "employee.json"
        io.save(path, db, constraints)
        loaded_db, loaded_constraints = io.load(path)
        assert loaded_db == db
        assert loaded_db.is_consistent()
        assert loaded_constraints.holds(loaded_db)

    def test_document_is_stable(self, tmp_path, db, constraints):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        io.save(p1, db, constraints)
        io.save(p2, db, constraints)
        assert p1.read_text() == p2.read_text()

    def test_hand_written_document(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps({
            "domains": {"a": [1, 2], "b": [1, 2]},
            "entity_types": {"x": ["a"], "xy": ["a", "b"]},
            "relations": {"xy": [{"a": 1, "b": 2}], "x": [{"a": 1}]},
            "constraints": [
                {"kind": "subset", "special": "xy", "general": "x"},
            ],
        }))
        db, constraints = io.load(path)
        assert db.is_consistent()
        assert constraints.holds(db)

    def test_validation_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "domains": {"a": [1]},
            "entity_types": {"x": ["a"], "y": ["a"]},  # Entity Type Axiom!
        }))
        from repro.errors import AxiomViolationError

        with pytest.raises(AxiomViolationError):
            io.load(path)


class TestEveryConstraintKindRoundtrips:
    """Satellite coverage: each built-in kind survives dump -> load."""

    def _roundtrip(self, schema, constraint):
        from repro.core import ConstraintSet

        items = io.constraints_to_list(ConstraintSet(schema, [constraint]))
        rebuilt = io.constraints_from_list(schema, items)
        assert io.constraints_to_list(rebuilt) == items
        return items[0]

    def test_subset(self, schema):
        from repro.core import SubsetConstraint

        item = self._roundtrip(
            schema, SubsetConstraint(schema["manager"], schema["employee"]))
        assert item == {"kind": "subset", "special": "manager",
                        "general": "employee"}

    def test_fd(self, schema):
        from repro.core import EntityFD, FunctionalConstraint

        item = self._roundtrip(schema, FunctionalConstraint(EntityFD(
            schema["employee"], schema["department"], schema["worksfor"])))
        assert item == {"kind": "fd", "determinant": "employee",
                        "dependent": "department", "context": "worksfor"}

    def test_cardinality(self, schema):
        from repro.core import CardinalityConstraint

        item = self._roundtrip(schema, CardinalityConstraint(
            schema["worksfor"], schema["employee"], schema["department"],
            "1:n"))
        assert item["kind"] == "cardinality"
        assert item["cardinality"] == "1:n"

    def test_participation(self, schema):
        from repro.core import ParticipationConstraint

        item = self._roundtrip(schema, ParticipationConstraint(
            schema["worksfor"], schema["employee"]))
        assert item == {"kind": "participation", "relationship": "worksfor",
                        "member": "employee"}

    def test_mixed_set_survives_save_load(self, tmp_path, schema, db):
        from repro.core import (
            CardinalityConstraint,
            ConstraintSet,
            EntityFD,
            FunctionalConstraint,
            ParticipationConstraint,
            SubsetConstraint,
        )

        full = ConstraintSet(schema, [
            SubsetConstraint(schema["manager"], schema["employee"]),
            FunctionalConstraint(EntityFD(schema["employee"],
                                          schema["department"],
                                          schema["worksfor"])),
            CardinalityConstraint(schema["worksfor"], schema["employee"],
                                  schema["department"], "1:n"),
            ParticipationConstraint(schema["worksfor"], schema["employee"]),
        ])
        path = tmp_path / "full.json"
        io.save(path, db, full)
        _, loaded = io.load(path)
        assert io.constraints_to_list(loaded) == io.constraints_to_list(full)
        assert {type(c).__name__ for c in loaded.constraints} == \
            {type(c).__name__ for c in full.constraints}


class TestMalformedDocuments:
    """Satellite coverage: error paths of io.load / the from_dict codecs."""

    def test_partial_domains_rejected(self):
        # domains present but missing a used property
        with pytest.raises(SchemaError):
            io.schema_from_dict({
                "domains": {"a": [1, 2]},
                "entity_types": {"xy": ["a", "b"]},
            })

    def test_omitted_domains_get_defaults_but_validate_rows(self):
        # no domains at all: the documented small-integer defaults apply,
        # so out-of-range relation values still fail domain validation
        from repro.errors import ExtensionError

        db = io.extension_from_dict({
            "entity_types": {"x": ["a"]},
            "relations": {"x": [{"a": 1}]},
        })
        assert len(db.R("x")) == 1
        with pytest.raises(ExtensionError):
            io.extension_from_dict({
                "entity_types": {"x": ["a"]},
                "relations": {"x": [{"a": 99}]},
            })

    def test_non_scalar_domain_value_is_attribute_axiom(self):
        from repro.errors import AxiomViolationError

        for bad in ([1, 2], {"nested": True}):
            with pytest.raises(AxiomViolationError) as exc:
                io.schema_from_dict({
                    "domains": {"a": [bad]},
                    "entity_types": {"x": ["a"]},
                })
            assert exc.value.axiom == "Attribute Axiom"

    def test_non_scalar_relation_value_rejected(self):
        from repro.errors import ExtensionError

        with pytest.raises(ExtensionError):
            io.extension_from_dict({
                "domains": {"a": [1, 2]},
                "entity_types": {"x": ["a"]},
                "relations": {"x": [{"a": [1, 2]}]},
            })

    def test_constraint_missing_fields_rejected(self, schema):
        with pytest.raises(SchemaError) as exc:
            io.constraints_from_list(schema, [{"kind": "fd"}])
        assert "missing field" in str(exc.value)

    def test_constraint_over_unknown_entity_rejected(self, schema):
        with pytest.raises(SchemaError):
            io.constraints_from_list(schema, [
                {"kind": "subset", "special": "manager", "general": "nope"},
            ])

    def test_relation_for_unknown_entity_rejected(self):
        with pytest.raises(SchemaError):
            io.extension_from_dict({
                "domains": {"a": [1]},
                "entity_types": {"x": ["a"]},
                "relations": {"ghost": [{"a": 1}]},
            })


class TestReportToDict:
    def test_clean_report(self, schema, db, constraints):
        from repro.core import check_all

        report = check_all(schema, db, constraints=constraints.constraints)
        data = io.report_to_dict(report, constraints.report(db))
        assert data == {"ok": True, "findings": [], "constraints": {}}
        import json as _json

        assert _json.loads(_json.dumps(data)) == data

    def test_violations_serialise_with_witnesses(self, schema, db, constraints):
        from repro.core import check_all

        broken = db.insert("manager", {
            "name": "eva", "age": 47, "depname": "admin", "budget": 100,
        }, propagate=False)
        report = check_all(schema, broken, constraints=constraints.constraints)
        data = io.report_to_dict(report, constraints.report(broken))
        assert data["ok"] is False
        assert data["findings"]
        assert all(isinstance(w, str)
                   for f in data["findings"] for w in f["witnesses"])
        import json as _json

        _json.dumps(data)  # JSON-clean end to end
