"""Unit tests for JSON import/export (repro.io)."""

import json

import pytest

from repro import io
from repro.core.employee import employee_constraints, employee_extension
from repro.errors import SchemaError


class TestSchemaRoundtrip:
    def test_schema_to_from(self, schema):
        data = io.schema_to_dict(schema)
        rebuilt = io.schema_from_dict(data)
        assert rebuilt == schema

    def test_missing_entity_types(self):
        with pytest.raises(SchemaError):
            io.schema_from_dict({"domains": {}})

    def test_json_serialisable(self, schema):
        text = json.dumps(io.schema_to_dict(schema))
        assert "worksfor" in text


class TestExtensionRoundtrip:
    def test_extension_to_from(self, db):
        data = io.extension_to_dict(db)
        rebuilt = io.extension_from_dict(data)
        assert rebuilt == db

    def test_empty_relations_omitted(self, schema):
        from repro.core import DatabaseExtension

        db = DatabaseExtension(schema)
        data = io.extension_to_dict(db)
        assert data.get("relations", {}) == {}

    def test_contributor_overrides_roundtrip(self, schema):
        from repro.core import ContributorAssignment, DatabaseExtension

        contributors = ContributorAssignment(schema, {"manager": ["person"]})
        db = DatabaseExtension(schema, {}, contributors)
        data = io.extension_to_dict(db)
        assert data["contributors"] == {"manager": ["person"]}
        rebuilt = io.extension_from_dict(data)
        assert rebuilt.contributors.contributors(schema["manager"]) == \
            frozenset({schema["person"]})


class TestConstraintsRoundtrip:
    def test_all_builtin_kinds(self, schema, constraints):
        items = io.constraints_to_list(constraints)
        kinds = {item["kind"] for item in items}
        assert {"subset", "cardinality"} <= kinds
        rebuilt = io.constraints_from_list(schema, items)
        assert io.constraints_to_list(rebuilt) == items

    def test_unknown_kind_rejected(self, schema):
        with pytest.raises(SchemaError):
            io.constraints_from_list(schema, [{"kind": "mystery"}])

    def test_unserialisable_constraint_rejected(self, schema):
        from repro.core import ConstraintSet, DomainConstraint

        constraints = ConstraintSet(schema, [
            DomainConstraint("custom", schema["person"], lambda r: True),
        ])
        with pytest.raises(SchemaError):
            io.constraints_to_list(constraints)


class TestFileRoundtrip:
    def test_save_load(self, tmp_path, db, constraints):
        path = tmp_path / "employee.json"
        io.save(path, db, constraints)
        loaded_db, loaded_constraints = io.load(path)
        assert loaded_db == db
        assert loaded_db.is_consistent()
        assert loaded_constraints.holds(loaded_db)

    def test_document_is_stable(self, tmp_path, db, constraints):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        io.save(p1, db, constraints)
        io.save(p2, db, constraints)
        assert p1.read_text() == p2.read_text()

    def test_hand_written_document(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps({
            "domains": {"a": [1, 2], "b": [1, 2]},
            "entity_types": {"x": ["a"], "xy": ["a", "b"]},
            "relations": {"xy": [{"a": 1, "b": 2}], "x": [{"a": 1}]},
            "constraints": [
                {"kind": "subset", "special": "xy", "general": "x"},
            ],
        }))
        db, constraints = io.load(path)
        assert db.is_consistent()
        assert constraints.holds(db)

    def test_validation_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "domains": {"a": [1]},
            "entity_types": {"x": ["a"], "y": ["a"]},  # Entity Type Axiom!
        }))
        from repro.errors import AxiomViolationError

        with pytest.raises(AxiomViolationError):
            io.load(path)
