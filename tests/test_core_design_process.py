"""Unit tests for the section-2 design procedure."""

import pytest

from repro.core import (
    DesignDraft,
    DraftDependency,
    DraftEntity,
    run_design_process,
)
from repro.errors import SchemaError


def messy_draft():
    """A draft with one of each kind of problem."""
    return DesignDraft(
        domains={
            "name": ["ann", "bob"],
            "age": [30, 40],
            "depname": ["sales"],
            "location": ["delft"],
            "grade": [(1, "A")],  # decomposable values (and unused)
        },
        entities=[
            DraftEntity("person", frozenset({"name", "age"})),
            DraftEntity("human", frozenset({"name", "age"})),  # synonym
            DraftEntity("department", frozenset({"depname", "location"})),
            DraftEntity(
                "staff",
                frozenset({"name", "age", "depname", "location"}),
                is_cluster=True,
            ),
        ],
        dependencies=[
            DraftDependency("department", "name", "staff"),
        ],
    )


class TestSteps:
    def test_attribute_axiom_flagged(self):
        report = run_design_process(messy_draft())
        assert any("grade" in a.message for a in report.by_kind("attribute-axiom"))

    def test_synonyms_merged(self):
        report = run_design_process(messy_draft(), synonym_strategy="merge")
        merges = report.by_kind("synonym-merge")
        assert merges and "human" in merges[0].message
        assert report.schema is not None
        assert report.schema.get("person") is None or report.schema.get("human") is None

    def test_synonyms_role_attribute(self):
        report = run_design_process(messy_draft(), synonym_strategy="role")
        roles = report.by_kind("synonym-role")
        assert roles
        assert report.schema is not None
        person = report.schema.get("person")
        human = report.schema.get("human")
        assert person is not None and human is not None
        assert person.attributes != human.attributes

    def test_unknown_strategy(self):
        with pytest.raises(SchemaError):
            run_design_process(messy_draft(), synonym_strategy="??")

    def test_view_cluster_removed(self):
        report = run_design_process(messy_draft())
        removals = report.by_kind("view-removal")
        assert removals and "staff" in removals[0].message

    def test_dependency_attribute_promoted(self):
        report = run_design_process(messy_draft())
        promotions = report.by_kind("promote-attribute")
        assert promotions and "name" in promotions[0].message
        assert report.schema is not None
        assert report.schema.get("name_entity") is not None

    def test_removed_view_context_flagged(self):
        report = run_design_process(messy_draft())
        assert report.by_kind("missing-context")

    def test_resulting_schema_valid(self):
        report = run_design_process(messy_draft())
        assert report.schema is not None
        # a valid Schema construction implies the Entity Type Axiom holds.


class TestRelationshipChecks:
    def test_missing_contributor_flagged(self):
        draft = DesignDraft(
            domains={"a": [1], "b": [2]},
            entities=[
                DraftEntity("left", frozenset({"a"})),
                DraftEntity(
                    "rel", frozenset({"a", "b"}),
                    is_relationship=True,
                    claimed_contributors=frozenset({"left", "ghost"}),
                ),
            ],
        )
        report = run_design_process(draft)
        findings = report.by_kind("relationship-axiom")
        assert any("ghost" in f.message for f in findings)

    def test_uncovered_extras_flagged(self):
        draft = DesignDraft(
            domains={"a": [1], "b": [2], "extra": [3]},
            entities=[
                DraftEntity("left", frozenset({"a"})),
                DraftEntity("right", frozenset({"b"})),
                DraftEntity(
                    "rel", frozenset({"a", "b", "extra"}),
                    is_relationship=True,
                    claimed_contributors=frozenset({"left", "right"}),
                ),
            ],
        )
        report = run_design_process(draft)
        assert report.by_kind("identification")

    def test_shared_attributes_flagged(self):
        draft = DesignDraft(
            domains={"a": [1], "b": [2]},
            entities=[
                DraftEntity("left", frozenset({"a", "b"})),
                DraftEntity("right", frozenset({"b"})),
                DraftEntity(
                    "rel", frozenset({"a", "b"}),
                    is_relationship=True,
                    claimed_contributors=frozenset({"left", "right"}),
                ),
            ],
        )
        report = run_design_process(draft)
        assert report.by_kind("shared-attribute")


class TestCleanDraft:
    def test_employee_draft_passes_untouched(self):
        from repro.core.employee import ATTRIBUTE_SETS, DOMAINS

        draft = DesignDraft(
            domains=DOMAINS,
            entities=[
                DraftEntity(name, attrs) for name, attrs in ATTRIBUTE_SETS.items()
            ],
        )
        report = run_design_process(draft)
        assert report.schema is not None
        assert len(report.schema) == 5
        assert not report.by_kind("synonym-merge")

    def test_render_mentions_schema(self):
        report = run_design_process(messy_draft())
        assert "schema" in report.render()
